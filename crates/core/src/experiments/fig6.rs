//! Fig. 6: flight-time distributions for golden, fault-injection and both
//! detection & recovery settings, per environment.
//!
//! Fig. 6 is computed from the same campaign as Table I; this module adds
//! the flight-time-centric view (worst-case inflation of the injection runs
//! and the fraction of that inflation recovered by each scheme).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::campaign::EnvironmentCampaign;
use crate::error::MavfiError;
use crate::experiments::table1::{self, Table1Config};
use crate::report;
use crate::runner::TrainedDetectors;

/// Fig. 6 result: the same campaigns as Table I, viewed through flight time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Per-environment campaigns.
    pub campaigns: Vec<EnvironmentCampaign>,
}

impl Fig6Result {
    /// Builds the Fig. 6 view from already-run campaigns (avoids re-running
    /// the expensive experiment when Table I was just produced).
    pub fn from_campaigns(campaigns: Vec<EnvironmentCampaign>) -> Self {
        Self { campaigns }
    }

    /// Renders the per-environment flight-time summary table.
    pub fn to_table(&self) -> String {
        report::fig6_flight_time_summary(&self.campaigns)
    }

    /// Worst-case flight-time recovery of the autoencoder scheme, per
    /// environment, as fractions.
    pub fn autoencoder_recoveries(&self) -> Vec<(String, f64)> {
        self.campaigns
            .iter()
            .map(|campaign| {
                (
                    campaign.environment.label().to_owned(),
                    campaign
                        .autoencoder
                        .summary
                        .recovery_vs(&campaign.golden.summary, &campaign.injected.summary),
                )
            })
            .collect()
    }
}

/// Runs the Fig. 6 experiment from scratch (training detectors and running
/// the full campaign).  Prefer [`Fig6Result::from_campaigns`] when Table I
/// results are already available.
///
/// # Errors
///
/// Propagates campaign errors.
pub fn run(config: &Table1Config) -> Result<(Fig6Result, Arc<TrainedDetectors>), MavfiError> {
    let (table1, detectors) = table1::run(config)?;
    Ok((Fig6Result::from_campaigns(table1.campaigns), detectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SettingResult;
    use crate::qof::{QofMetrics, QofSummary};
    use mavfi_ppc::states::Stage;
    use mavfi_sim::env::EnvironmentKind;
    use mavfi_sim::world::MissionStatus;

    fn setting(label: &str, time: f64) -> SettingResult {
        let runs = vec![QofMetrics {
            status: MissionStatus::Succeeded,
            flight_time_s: time,
            energy_j: time * 100.0,
            distance_m: time * 3.0,
        }];
        SettingResult { label: label.into(), summary: QofSummary::from_runs(&runs), runs }
    }

    fn fake_campaign() -> EnvironmentCampaign {
        EnvironmentCampaign {
            environment: EnvironmentKind::Sparse,
            golden: setting("Golden Run", 100.0),
            injected: setting("Injection Run", 160.0),
            gaussian: setting("Gaussian-based", 130.0),
            autoencoder: setting("Autoencoder-based", 110.0),
            gaussian_recomputations: Stage::ALL.iter().map(|s| (*s, 1)).collect(),
            autoencoder_recomputations: Stage::ALL.iter().map(|s| (*s, 1)).collect(),
            golden_mean_ticks: 1_000.0,
            golden_mean_compute_ms: 60_000.0,
        }
    }

    #[test]
    fn table_reports_inflation_and_recovery() {
        let result = Fig6Result::from_campaigns(vec![fake_campaign()]);
        let table = result.to_table();
        assert!(table.contains("Sparse"));
        assert!(table.contains("60.0%"), "injection inflation should be 60%: {table}");
        let recoveries = result.autoencoder_recoveries();
        assert_eq!(recoveries.len(), 1);
        assert!((recoveries[0].1 - 0.8333).abs() < 0.01);
    }
}
