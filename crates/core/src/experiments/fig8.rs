//! Fig. 8: DMR/TMR hardware redundancy versus software anomaly detection,
//! evaluated with the cyber-physical visual performance model on the AirSim
//! UAV and the DJI Spark (Cortex-A57 companion computer).

use mavfi_platform::perf_model::{ScenarioParams, VisualPerformanceModel};
use mavfi_platform::redundancy::ProtectionScheme;
use mavfi_platform::spec::ComputePlatform;
use mavfi_platform::uav::UavSpec;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// Configuration of the Fig. 8 study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Scenario parameters of the performance model.
    pub scenario: ScenarioParams,
}

/// One (airframe, scheme) data point, normalised to the anomaly-detection
/// baseline as in the paper's bar chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Airframe name.
    pub uav: String,
    /// Protection scheme.
    pub scheme: String,
    /// Flight time (s).
    pub flight_time_s: f64,
    /// Mission energy (J).
    pub energy_j: f64,
    /// Flight time normalised to the anomaly-detection baseline.
    pub flight_time_ratio: f64,
    /// Energy normalised to the anomaly-detection baseline.
    pub energy_ratio: f64,
}

/// Full Fig. 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// All data points (two airframes × three schemes).
    pub points: Vec<Fig8Point>,
}

impl Fig8Result {
    /// Renders the comparison table.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "UAV",
            "Scheme",
            "Flight time (s)",
            "Energy (kJ)",
            "Time vs D&R",
            "Energy vs D&R",
        ]);
        for point in &self.points {
            table.push_row([
                point.uav.clone(),
                point.scheme.clone(),
                format!("{:.1}", point.flight_time_s),
                format!("{:.1}", point.energy_j / 1000.0),
                format!("{:.2}x", point.flight_time_ratio),
                format!("{:.2}x", point.energy_ratio),
            ]);
        }
        table.render()
    }

    /// The TMR-versus-anomaly-detection energy ratio for a given airframe.
    pub fn tmr_energy_ratio(&self, uav_name: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.uav == uav_name && p.scheme == ProtectionScheme::Tmr.label())
            .map(|p| p.energy_ratio)
    }
}

/// Runs the Fig. 8 study.
pub fn run(config: &Fig8Config) -> Fig8Result {
    let model = VisualPerformanceModel::new(config.scenario);
    let platform = ComputePlatform::cortex_a57();
    let mut points = Vec::new();
    for uav in UavSpec::paper_uavs() {
        let series = model.fig8_series(&uav, &platform);
        let baseline = series
            .iter()
            .find(|(scheme, _)| *scheme == ProtectionScheme::AnomalyDetection)
            .map(|(_, estimate)| *estimate)
            .expect("anomaly detection is always in the series");
        for (scheme, estimate) in series {
            points.push(Fig8Point {
                uav: uav.name.clone(),
                scheme: scheme.label().to_owned(),
                flight_time_s: estimate.flight_time_s,
                energy_j: estimate.energy_j,
                flight_time_ratio: estimate.flight_time_s / baseline.flight_time_s,
                energy_ratio: estimate.energy_j / baseline.energy_j,
            });
        }
    }
    Fig8Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_costs_more_on_both_airframes() {
        let result = run(&Fig8Config::default());
        assert_eq!(result.points.len(), 6);
        for uav in ["AirSim UAV", "DJI Spark"] {
            let ratio = result.tmr_energy_ratio(uav).unwrap();
            assert!(ratio > 1.0, "TMR should cost more than anomaly D&R on {uav}");
        }
        // The penalty is larger on the smaller airframe (paper: 1.06x vs 1.91x).
        let airsim = result.tmr_energy_ratio("AirSim UAV").unwrap();
        let spark = result.tmr_energy_ratio("DJI Spark").unwrap();
        assert!(spark > airsim);
    }

    #[test]
    fn table_contains_all_schemes() {
        let table = run(&Fig8Config::default()).to_table();
        for scheme in ["Anomaly D&R", "DMR", "TMR"] {
            assert!(table.contains(scheme));
        }
    }
}
