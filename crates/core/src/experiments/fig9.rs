//! Fig. 9: computing-platform comparison (desktop i9 versus embedded
//! Cortex-A57/TX2): specification table, modelled flight time and energy,
//! and fault-injection recovery on the embedded platform.

use mavfi_platform::perf_model::{ScenarioParams, VisualPerformanceModel};
use mavfi_platform::redundancy::ProtectionScheme;
use mavfi_platform::spec::ComputePlatform;
use mavfi_platform::uav::UavSpec;
use serde::{Deserialize, Serialize};

use crate::campaign::EnvironmentCampaign;
use crate::report::{percent, TextTable};

/// Configuration of the Fig. 9 comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig9Config {
    /// Scenario parameters of the performance model.
    pub scenario: ScenarioParams,
}

/// One platform row of the Fig. 9 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRow {
    /// Platform name.
    pub name: String,
    /// Core count.
    pub cores: u32,
    /// Core frequency (GHz).
    pub frequency_ghz: f64,
    /// Compute power (W).
    pub power_w: f64,
    /// Modelled mission flight time (s).
    pub flight_time_s: f64,
    /// Modelled mission energy (kJ).
    pub flight_energy_kj: f64,
}

/// Full Fig. 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// One row per platform (i9 first, Cortex-A57 second).
    pub platforms: Vec<PlatformRow>,
    /// Worst-case flight-time recovery of the Gaussian scheme measured by a
    /// fault-injection campaign, if one was supplied.
    pub gaussian_recovery: Option<f64>,
    /// Worst-case flight-time recovery of the autoencoder scheme measured by
    /// a fault-injection campaign, if one was supplied.
    pub autoencoder_recovery: Option<f64>,
}

impl Fig9Result {
    /// Renders the platform-specification and QoF table.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "Platform",
            "Cores",
            "Freq (GHz)",
            "Power (W)",
            "Flight time (s)",
            "Flight energy (kJ)",
        ]);
        for row in &self.platforms {
            table.push_row([
                row.name.clone(),
                row.cores.to_string(),
                format!("{:.1}", row.frequency_ghz),
                format!("{:.0}", row.power_w),
                format!("{:.1}", row.flight_time_s),
                format!("{:.1}", row.flight_energy_kj),
            ]);
        }
        let mut output = table.render();
        if let (Some(gaussian), Some(autoencoder)) =
            (self.gaussian_recovery, self.autoencoder_recovery)
        {
            output.push_str(&format!(
                "Embedded-platform worst-case flight time recovered: {} (Gaussian), {} (Autoencoder)\n",
                percent(gaussian),
                percent(autoencoder)
            ));
        }
        output
    }

    /// Flight-time ratio of the embedded platform over the desktop platform.
    pub fn embedded_slowdown(&self) -> f64 {
        if self.platforms.len() < 2 || self.platforms[0].flight_time_s <= 0.0 {
            return 1.0;
        }
        self.platforms[1].flight_time_s / self.platforms[0].flight_time_s
    }
}

/// Runs the Fig. 9 comparison.  Pass a campaign (for example the Sparse
/// campaign from Table I) to also report the measured recovery percentages.
pub fn run(config: &Fig9Config, campaign: Option<&EnvironmentCampaign>) -> Fig9Result {
    let model = VisualPerformanceModel::new(config.scenario);
    let uav = UavSpec::airsim_uav();
    let platforms = ComputePlatform::paper_platforms()
        .into_iter()
        .map(|platform| {
            let estimate = model.evaluate(&uav, &platform, ProtectionScheme::AnomalyDetection);
            PlatformRow {
                name: platform.name.clone(),
                cores: platform.core_count,
                frequency_ghz: platform.core_frequency_ghz,
                power_w: platform.power_watts,
                flight_time_s: estimate.flight_time_s,
                flight_energy_kj: estimate.energy_j / 1000.0,
            }
        })
        .collect();

    let (gaussian_recovery, autoencoder_recovery) = match campaign {
        Some(campaign) => (
            Some(
                campaign
                    .gaussian
                    .summary
                    .recovery_vs(&campaign.golden.summary, &campaign.injected.summary),
            ),
            Some(
                campaign
                    .autoencoder
                    .summary
                    .recovery_vs(&campaign.golden.summary, &campaign.injected.summary),
            ),
        ),
        None => (None, None),
    };

    Fig9Result { platforms, gaussian_recovery, autoencoder_recovery }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_platform_is_substantially_slower() {
        let result = run(&Fig9Config::default(), None);
        assert_eq!(result.platforms.len(), 2);
        assert_eq!(result.platforms[0].name, "i9-9940X");
        assert_eq!(result.platforms[1].name, "Cortex-A57");
        // The paper's table shows 115 s vs 322 s (~2.8x).
        let slowdown = result.embedded_slowdown();
        assert!(slowdown > 1.8, "expected a clear slowdown, got {slowdown:.2}x");
        // Energy is also higher on the slower platform despite lower power.
        assert!(result.platforms[1].flight_energy_kj > result.platforms[0].flight_energy_kj);
    }

    #[test]
    fn table_contains_spec_columns() {
        let table = run(&Fig9Config::default(), None).to_table();
        assert!(table.contains("Cortex-A57"));
        assert!(table.contains("14"));
        assert!(table.contains("3.3"));
    }
}
