//! Fault-model characterisation (§III-B): which bit fields matter.
//!
//! The paper observes that "faults in sign and exponent fields have a
//! greater impact on the UAV's resilience" and that most random flips land
//! in the (largely benign) mantissa.  This experiment quantifies both claims
//! over the values the pipeline actually produces: it flies one golden
//! mission, samples the monitored inter-kernel states, and surveys every
//! possible single-bit flip of those values.

use mavfi_fault::bitflip::BitField;
use mavfi_fault::severity::{FlipSurvey, Severity, SeverityThresholds};
use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::config::MissionSpec;
use crate::error::MavfiError;
use crate::report::{percent, TextTable};
use crate::runner::MissionRunner;

/// Configuration of the fault-model characterisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModelConfig {
    /// Environment of the golden mission whose states are surveyed.
    pub environment: EnvironmentKind,
    /// Mission seed.
    pub seed: u64,
    /// Mission time budget (s).
    pub mission_time_budget: f64,
    /// Keep every n-th telemetry sample (the survey flips all 64 bits of all
    /// 13 states of every kept sample, so thinning keeps it cheap).
    pub sample_stride: usize,
    /// Severity classification thresholds.
    pub thresholds: SeverityThresholds,
}

impl Default for FaultModelConfig {
    fn default() -> Self {
        Self {
            environment: EnvironmentKind::Sparse,
            seed: 11,
            mission_time_budget: 120.0,
            sample_stride: 10,
            thresholds: SeverityThresholds::default(),
        }
    }
}

impl FaultModelConfig {
    /// A reduced configuration for tests.
    pub fn quick() -> Self {
        Self { mission_time_budget: 30.0, sample_stride: 25, ..Self::default() }
    }
}

/// Result of the fault-model characterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModelResult {
    /// The flip survey over the sampled state values.
    pub survey: FlipSurvey,
    /// Number of state values surveyed.
    pub values_surveyed: usize,
}

impl FaultModelResult {
    /// Renders the per-bit-field severity breakdown.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "Bit field",
            "Share of random flips",
            "Masked / identical",
            "Benign",
            "Harmful (severe + non-finite)",
        ]);
        for field in BitField::ALL {
            let total = self.survey.total_in_field(field).max(1) as f64;
            let benign = self.survey.count(field, Severity::Benign) as f64 / total;
            table.push_row([
                format!("{field:?}"),
                percent(field.width() as f64 / 64.0),
                percent(self.survey.masked_fraction(field)),
                percent(benign),
                percent(self.survey.harmful_fraction(field)),
            ]);
        }
        table.render()
    }

    /// The paper's qualitative claim: sign and exponent flips are more
    /// harmful than mantissa flips.
    pub fn sign_exponent_dominate(&self) -> bool {
        let mantissa = self.survey.harmful_fraction(BitField::Mantissa);
        self.survey.harmful_fraction(BitField::Sign) > mantissa
            && self.survey.harmful_fraction(BitField::Exponent) > mantissa
    }
}

/// Runs the fault-model characterisation.
///
/// # Errors
///
/// Propagates mission-runner errors from telemetry collection.
pub fn run(config: &FaultModelConfig) -> Result<FaultModelResult, MavfiError> {
    let spec = MissionSpec::new(config.environment, config.seed)
        .with_time_budget(config.mission_time_budget);
    let outcome = MissionRunner::new(spec).run_golden();

    // Survey the raw positions of the flight trail plus representative
    // command magnitudes: these are the operand values the paper's
    // instruction-level injector would corrupt.
    let stride = config.sample_stride.max(1);
    let mut values: Vec<f64> = Vec::new();
    for point in outcome.trail.iter().step_by(stride) {
        values.extend_from_slice(&[point.x, point.y, point.z]);
    }
    // Include a spread of velocity/time-scale magnitudes so that the survey
    // is not dominated by large position coordinates.
    values.extend_from_slice(&[0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]);
    let values: Vec<f64> = values.into_iter().filter(|v| v.is_finite() && *v != 0.0).collect();

    let survey = FlipSurvey::over_values(&values, config.thresholds);
    Ok(FaultModelResult { survey, values_surveyed: values.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_from_a_synthetic_survey() {
        let survey =
            FlipSurvey::over_values(&[1.0, -2.5, 40.0, 0.1], SeverityThresholds::default());
        let result = FaultModelResult { survey, values_surveyed: 4 };
        let table = result.to_table();
        assert!(table.contains("Sign"));
        assert!(table.contains("Exponent"));
        assert!(table.contains("Mantissa"));
        assert!(result.sign_exponent_dominate());
    }

    #[test]
    fn quick_config_thins_the_survey() {
        assert!(FaultModelConfig::quick().sample_stride >= 10);
    }
}
