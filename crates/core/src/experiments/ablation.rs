//! Ablation studies behind the paper's design choices: the Gaussian `n`
//! parameter, the autoencoder alarm threshold, the choice of detector family
//! and the autoencoder architecture.
//!
//! The paper fixes these as design points (§IV-C: "The number of sigma n is
//! a configurable variable that can be optimized based on task complexity";
//! §IV-D: a 13-6-3 autoencoder thresholded at the training upper bound).
//! These ablations expose the operating curves behind the choices using
//! stream-level detection quality, which keeps them cheap enough to run on
//! every `cargo bench` invocation.

use mavfi_detect::calibration::{
    roc_curve, sweep_aad_threshold, sweep_gad_nsigma, CorruptionProfile, LabeledStream,
    OperatingPoint, SyntheticAnomalyConfig,
};
use mavfi_detect::ewma::{EwmaBank, EwmaConfig};
use mavfi_detect::gad::{CgadConfig, GadBank};
use mavfi_detect::mahalanobis::{MahalanobisConfig, MahalanobisDetector};
use mavfi_detect::metrics::RocCurve;
use mavfi_detect::static_range::{StaticRangeBank, StaticRangeConfig};
use mavfi_detect::training::TelemetrySet;
use mavfi_detect::{AadConfig, AadDetector};
use mavfi_nn::autoencoder::Autoencoder;
use mavfi_nn::train::{train_autoencoder, TrainConfig};
use mavfi_ppc::states::MonitoredStates;
use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::config::MissionSpec;
use crate::error::MavfiError;
use crate::report::{percent, TextTable};
use crate::runner::MissionRunner;

const DIM: usize = MonitoredStates::DIM;

/// Configuration of the ablation studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Error-free missions flown to collect telemetry.
    pub training_missions: usize,
    /// Base seed of the randomized training environments.
    pub training_seed: u64,
    /// Time budget of each telemetry mission (s).
    pub mission_time_budget: f64,
    /// Autoencoder training epochs.
    pub epochs: usize,
    /// Fraction of the telemetry held out for evaluation streams.
    pub eval_fraction: f64,
    /// Fraction of evaluation samples that carry a corruption.
    pub corruption_rate: f64,
    /// Magnitude (code units) of the exponent-flip-style corruption.
    pub exponent_magnitude: f64,
    /// Level (code units) of the in-range correlation-breaking corruption.
    pub correlation_level: f64,
    /// Gaussian `n_sigma` values to sweep.
    pub n_sigmas: Vec<f64>,
    /// Autoencoder threshold margins to sweep (relative to the trained
    /// threshold).
    pub aad_margins: Vec<f64>,
    /// Autoencoder bottleneck widths to sweep (the paper uses 3).
    pub bottlenecks: Vec<usize>,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            training_missions: 3,
            training_seed: 7_100,
            mission_time_budget: 60.0,
            epochs: 25,
            eval_fraction: 0.35,
            corruption_rate: 0.05,
            exponent_magnitude: 6_000.0,
            correlation_level: 6.0,
            n_sigmas: vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0],
            aad_margins: vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0],
            bottlenecks: vec![2, 3, 6],
        }
    }
}

impl AblationConfig {
    /// A reduced configuration for tests.
    pub fn quick() -> Self {
        Self {
            training_missions: 1,
            mission_time_budget: 25.0,
            epochs: 8,
            n_sigmas: vec![3.0, 6.0],
            aad_margins: vec![0.5, 2.0],
            bottlenecks: vec![3],
            ..Self::default()
        }
    }
}

/// Stream-level quality of one detector family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorQuality {
    /// Detector family name.
    pub name: String,
    /// ROC AUC on the exponent-flip stream.
    pub auc_exponent: f64,
    /// ROC AUC on the in-range correlation-break stream.
    pub auc_correlation: f64,
    /// True-positive rate on the exponent-flip stream while keeping the
    /// false-positive rate at or below 1%.
    pub tpr_at_1pct_fpr: f64,
}

/// One point of the autoencoder architecture sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchitecturePoint {
    /// Bottleneck (latent) width.
    pub bottleneck: usize,
    /// Total trainable parameters of the autoencoder.
    pub parameters: usize,
    /// Final mean training loss.
    pub final_loss: f64,
    /// ROC AUC on the exponent-flip stream.
    pub auc_exponent: f64,
}

/// Full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Gaussian `n_sigma` sweep on the exponent-flip stream.
    pub nsigma_sweep: Vec<OperatingPoint>,
    /// Autoencoder threshold-margin sweep on the exponent-flip stream.
    pub margin_sweep: Vec<OperatingPoint>,
    /// Per-detector stream-level quality.
    pub detectors: Vec<DetectorQuality>,
    /// Autoencoder architecture sweep.
    pub architectures: Vec<ArchitecturePoint>,
    /// Number of training samples used.
    pub training_samples: usize,
    /// Number of evaluation samples used.
    pub evaluation_samples: usize,
}

impl AblationResult {
    /// Renders the Gaussian `n_sigma` sweep.
    pub fn nsigma_table(&self) -> String {
        operating_point_table("n_sigma", &self.nsigma_sweep)
    }

    /// Renders the autoencoder threshold-margin sweep.
    pub fn margin_table(&self) -> String {
        operating_point_table("threshold margin", &self.margin_sweep)
    }

    /// Renders the detector-family comparison.
    pub fn detector_table(&self) -> String {
        let mut table = TextTable::new([
            "Detector",
            "AUC (exponent flips)",
            "AUC (correlation breaks)",
            "TPR @ 1% FPR",
        ]);
        for quality in &self.detectors {
            table.push_row([
                quality.name.clone(),
                format!("{:.3}", quality.auc_exponent),
                format!("{:.3}", quality.auc_correlation),
                percent(quality.tpr_at_1pct_fpr),
            ]);
        }
        table.render()
    }

    /// Renders the autoencoder architecture sweep.
    pub fn architecture_table(&self) -> String {
        let mut table =
            TextTable::new(["Bottleneck", "Parameters", "Final loss", "AUC (exponent flips)"]);
        for point in &self.architectures {
            table.push_row([
                point.bottleneck.to_string(),
                point.parameters.to_string(),
                format!("{:.5}", point.final_loss),
                format!("{:.3}", point.auc_exponent),
            ]);
        }
        table.render()
    }

    /// Renders every ablation table in one block.
    pub fn to_table(&self) -> String {
        format!(
            "Gaussian n-sigma sweep (exponent-flip stream)\n{}\n\
             Autoencoder threshold-margin sweep (exponent-flip stream)\n{}\n\
             Detector families ({} train / {} eval samples)\n{}\n\
             Autoencoder architecture sweep\n{}",
            self.nsigma_table(),
            self.margin_table(),
            self.training_samples,
            self.evaluation_samples,
            self.detector_table(),
            self.architecture_table(),
        )
    }

    /// The detector quality entry with the given name, if present.
    pub fn detector(&self, name: &str) -> Option<&DetectorQuality> {
        self.detectors.iter().find(|d| d.name == name)
    }
}

fn operating_point_table(parameter: &str, points: &[OperatingPoint]) -> String {
    let mut table = TextTable::new([parameter, "Precision", "Recall", "F1", "False-positive rate"]);
    for point in points {
        table.push_row([
            format!("{:.2}", point.parameter),
            percent(point.matrix.precision()),
            percent(point.matrix.recall()),
            format!("{:.3}", point.matrix.f1()),
            percent(point.matrix.false_positive_rate()),
        ]);
    }
    table.render()
}

/// Runs the ablation studies.
///
/// # Errors
///
/// Propagates mission-runner errors from telemetry collection.
pub fn run(config: &AblationConfig) -> Result<AblationResult, MavfiError> {
    // 1. Collect error-free telemetry from randomized environments, exactly
    //    like detector training (§V).
    let mut telemetry = TelemetrySet::new();
    for index in 0..config.training_missions.max(1) {
        let spec =
            MissionSpec::new(EnvironmentKind::Randomized, config.training_seed + index as u64)
                .with_time_budget(config.mission_time_budget);
        let _ = MissionRunner::new(spec).run_collecting_telemetry(&mut telemetry);
    }
    let samples = telemetry.samples();
    let split = ((samples.len() as f64) * (1.0 - config.eval_fraction.clamp(0.05, 0.95))) as usize;
    let split = split.clamp(1, samples.len().saturating_sub(1).max(1));
    let (train, eval) = samples.split_at(split);
    let train: Vec<[f64; DIM]> = train.to_vec();
    let eval: Vec<[f64; DIM]> = eval.to_vec();

    // 2. Labelled evaluation streams.
    let exponent_stream = LabeledStream::synthesize(
        &eval,
        SyntheticAnomalyConfig {
            corruption_rate: config.corruption_rate,
            profile: CorruptionProfile::ExponentFlip { magnitude: config.exponent_magnitude },
            seed: config.training_seed ^ 0xab1,
        },
    );
    let correlation_stream = LabeledStream::synthesize(
        &eval,
        SyntheticAnomalyConfig {
            corruption_rate: config.corruption_rate,
            profile: CorruptionProfile::CorrelationBreak { level: config.correlation_level },
            seed: config.training_seed ^ 0xab2,
        },
    );

    // 3. Fit every detector family on the training split.
    let mut gad = GadBank::new(CgadConfig::default());
    gad.prime(&train);
    let mut ewma = EwmaBank::new(EwmaConfig::default());
    ewma.prime(&train);
    let ranges = StaticRangeBank::calibrate(&train, StaticRangeConfig::default());
    let mahalanobis = MahalanobisDetector::fit(&train, MahalanobisConfig::default());
    let train_config = TrainConfig { epochs: config.epochs, ..TrainConfig::default() };
    let (aad, _) = AadDetector::train(&train, AadConfig::default(), &train_config);

    let quality = |name: &str, exponent: RocCurve, correlation: RocCurve| DetectorQuality {
        name: name.to_owned(),
        auc_exponent: exponent.auc(),
        auc_correlation: correlation.auc(),
        tpr_at_1pct_fpr: exponent.tpr_at_fpr(0.01),
    };
    let detectors = vec![
        quality(
            "Gaussian (GAD)",
            roc_curve(&gad, &exponent_stream),
            roc_curve(&gad, &correlation_stream),
        ),
        quality("EWMA", roc_curve(&ewma, &exponent_stream), roc_curve(&ewma, &correlation_stream)),
        quality(
            "Static range",
            roc_curve(&ranges, &exponent_stream),
            roc_curve(&ranges, &correlation_stream),
        ),
        quality(
            "Mahalanobis",
            roc_curve(&mahalanobis, &exponent_stream),
            roc_curve(&mahalanobis, &correlation_stream),
        ),
        quality(
            "Autoencoder (AAD)",
            roc_curve(&aad, &exponent_stream),
            roc_curve(&aad, &correlation_stream),
        ),
    ];

    // 4. Parameter sweeps.
    let nsigma_sweep =
        sweep_gad_nsigma(&train, &exponent_stream, &config.n_sigmas, CgadConfig::default());
    let margin_sweep = sweep_aad_threshold(&aad, &exponent_stream, &config.aad_margins);

    // 5. Autoencoder architecture sweep on normalised inputs.
    let (mean, std) = aad.normalization();
    let normalize = |sample: &[f64; DIM]| -> Vec<f64> {
        sample
            .iter()
            .zip(mean)
            .zip(std)
            .map(|((value, mean), std)| (value - mean) / std * AadConfig::default().input_scale)
            .collect()
    };
    let normalized_train: Vec<Vec<f64>> = train.iter().map(normalize).collect();
    let architectures = config
        .bottlenecks
        .iter()
        .map(|&bottleneck| {
            let mut autoencoder = Autoencoder::new(DIM, &[6, bottleneck], 7);
            let report = train_autoencoder(&mut autoencoder, &normalized_train, &train_config);
            let scored: Vec<(f64, mavfi_detect::metrics::GroundTruth)> = exponent_stream
                .samples()
                .iter()
                .map(|(sample, truth)| {
                    (autoencoder.reconstruction_error(&normalize(sample)), *truth)
                })
                .collect();
            ArchitecturePoint {
                bottleneck,
                parameters: autoencoder.network().parameter_count(),
                final_loss: report.final_loss(),
                auc_exponent: RocCurve::from_scores(&scored).auc(),
            }
        })
        .collect();

    Ok(AblationResult {
        nsigma_sweep,
        margin_sweep,
        detectors,
        architectures,
        training_samples: train.len(),
        evaluation_samples: eval.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_small() {
        let config = AblationConfig::quick();
        assert_eq!(config.training_missions, 1);
        assert!(config.n_sigmas.len() <= 3);
    }

    #[test]
    fn tables_render_from_synthetic_results() {
        let result = AblationResult {
            nsigma_sweep: vec![],
            margin_sweep: vec![],
            detectors: vec![DetectorQuality {
                name: "Gaussian (GAD)".to_owned(),
                auc_exponent: 0.98,
                auc_correlation: 0.55,
                tpr_at_1pct_fpr: 0.9,
            }],
            architectures: vec![ArchitecturePoint {
                bottleneck: 3,
                parameters: 200,
                final_loss: 0.01,
                auc_exponent: 0.97,
            }],
            training_samples: 100,
            evaluation_samples: 40,
        };
        let table = result.to_table();
        assert!(table.contains("Gaussian (GAD)"));
        assert!(table.contains("Bottleneck"));
        assert!(result.detector("Gaussian (GAD)").is_some());
        assert!(result.detector("nonexistent").is_none());
    }
}
