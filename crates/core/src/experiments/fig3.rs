//! Fig. 3: end-to-end fault-tolerance of individual kernels (flight time and
//! success rate when a single bit flip lands in each kernel, Sparse
//! environment).

use mavfi_fault::campaign::{CampaignPlan, TriggerWindow};
use mavfi_fault::model::FaultModel;
use mavfi_fault::target::InjectionTarget;
use mavfi_ppc::kernel::KernelId;
use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::error::MavfiError;
use crate::exec::{CampaignExecutor, InjectionSweep};
use crate::qof::QofSummary;
use crate::report::{percent, seconds, TextTable};

/// Configuration of the Fig. 3 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Environment (the paper uses Sparse).
    pub environment: EnvironmentKind,
    /// Injection runs per kernel (the paper uses 100).
    pub runs_per_kernel: usize,
    /// Golden runs for the baseline column.
    pub golden_runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            environment: EnvironmentKind::Sparse,
            runs_per_kernel: 100,
            golden_runs: 100,
            base_seed: 30,
            mission_time_budget: 400.0,
        }
    }
}

impl Fig3Config {
    /// A reduced configuration for tests and quick benches.
    pub fn quick() -> Self {
        Self { runs_per_kernel: 2, golden_runs: 2, mission_time_budget: 240.0, ..Self::default() }
    }
}

/// Per-kernel result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSensitivity {
    /// The kernel the faults were injected into.
    pub kernel: KernelId,
    /// QoF summary over the injection runs.
    pub summary: QofSummary,
}

/// Full Fig. 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Error-free baseline.
    pub golden: QofSummary,
    /// One entry per studied kernel, in the paper's order.
    pub kernels: Vec<KernelSensitivity>,
}

impl Fig3Result {
    /// Renders the result as a table with the same rows as Fig. 3a/3b.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "Target",
            "Success rate",
            "Mean flight time",
            "Max flight time",
            "Flight time inflation",
        ]);
        table.push_row([
            "Golden".to_owned(),
            percent(self.golden.success_rate),
            seconds(self.golden.mean_flight_time_s),
            seconds(self.golden.max_flight_time_s),
            "-".to_owned(),
        ]);
        for entry in &self.kernels {
            table.push_row([
                entry.kernel.label().to_owned(),
                percent(entry.summary.success_rate),
                seconds(entry.summary.mean_flight_time_s),
                seconds(entry.summary.max_flight_time_s),
                percent(entry.summary.worst_case_inflation_vs(&self.golden)),
            ]);
        }
        table.render()
    }

    /// Mean worst-case flight-time inflation over the planning and control
    /// kernels minus the perception kernels — positive when planning and
    /// control are more critical, the paper's headline finding.
    pub fn planning_control_excess_inflation(&self) -> f64 {
        let inflation = |filter: &dyn Fn(KernelId) -> bool| {
            let entries: Vec<&KernelSensitivity> =
                self.kernels.iter().filter(|entry| filter(entry.kernel)).collect();
            if entries.is_empty() {
                return 0.0;
            }
            entries
                .iter()
                .map(|entry| entry.summary.worst_case_inflation_vs(&self.golden))
                .sum::<f64>()
                / entries.len() as f64
        };
        let perception = inflation(&|kernel| {
            matches!(kernel, KernelId::PointCloudGeneration | KernelId::OctoMap)
        });
        let downstream = inflation(&|kernel| {
            matches!(
                kernel,
                KernelId::Rrt | KernelId::RrtConnect | KernelId::RrtStar | KernelId::Pid
            )
        });
        downstream - perception
    }
}

/// Runs the Fig. 3 experiment.
///
/// # Errors
///
/// Propagates mission-runner errors.
pub fn run(config: &Fig3Config) -> Result<Fig3Result, MavfiError> {
    // Plan every injection up front through the fault crate's campaign
    // planner (same RNG consumption order as the original serial loops),
    // then hand golden + injection runs to the execution engine as one
    // sharded run list.
    let targets: Vec<InjectionTarget> =
        KernelId::FIG3_KERNELS.into_iter().map(InjectionTarget::Kernel).collect();
    let sweep = InjectionSweep {
        environment: config.environment,
        base_seed: config.base_seed,
        mission_time_budget: config.mission_time_budget,
        golden_runs: config.golden_runs,
        runs_per_target: config.runs_per_kernel,
        plan: CampaignPlan::new(
            &targets,
            config.runs_per_kernel,
            FaultModel::default(),
            TriggerWindow::new(10, 300),
            config.base_seed ^ 0xf163,
        ),
    };
    let outcome = CampaignExecutor::from_env().run_sweep(&sweep)?;

    let kernels = KernelId::FIG3_KERNELS
        .iter()
        .zip(outcome.injected_groups(config.runs_per_kernel))
        .map(|(&kernel, summary)| KernelSensitivity { kernel, summary })
        .collect();

    Ok(Fig3Result { golden: QofSummary::from_runs(&outcome.golden), kernels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::world::MissionStatus;

    #[test]
    fn table_contains_every_kernel_row() {
        let golden = QofSummary::from_runs(&[crate::qof::QofMetrics {
            status: MissionStatus::Succeeded,
            flight_time_s: 100.0,
            energy_j: 1000.0,
            distance_m: 300.0,
        }]);
        let result = Fig3Result {
            golden: golden.clone(),
            kernels: KernelId::FIG3_KERNELS
                .into_iter()
                .map(|kernel| KernelSensitivity { kernel, summary: golden.clone() })
                .collect(),
        };
        let table = result.to_table();
        for kernel in KernelId::FIG3_KERNELS {
            assert!(table.contains(kernel.label()), "missing row for {kernel:?}");
        }
        assert!(table.contains("Golden"));
        assert_eq!(result.planning_control_excess_inflation(), 0.0);
    }

    #[test]
    fn quick_config_is_small() {
        let config = Fig3Config::quick();
        assert!(config.runs_per_kernel <= 5);
        assert_eq!(config.environment, EnvironmentKind::Sparse);
    }
}
