//! Experiment drivers: one module per table or figure of the paper's
//! evaluation.  Each module exposes a `Config`, a `run` entry point and a
//! formatter that prints the same rows/series the paper reports; the
//! benches in `mavfi-bench` and the repository examples are thin wrappers
//! around these.

pub mod ablation;
pub mod fault_model;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
