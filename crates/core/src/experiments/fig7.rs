//! Fig. 7: flight-trajectory visualisation in the Dense environment —
//! golden run, run with a planning/perception fault, and run with the fault
//! plus detection & recovery.

use mavfi_fault::bitflip::BitField;
use mavfi_fault::injector::FaultSpec;
use mavfi_fault::model::FaultModel;
use mavfi_fault::target::InjectionTarget;
use mavfi_ppc::states::{Stage, StateField};
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::geometry::Vec3;
use mavfi_sim::world::MissionStatus;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::config::{MissionSpec, Protection};
use crate::error::MavfiError;
use crate::report::{percent, seconds, TextTable};
use crate::runner::{MissionRunner, TrainedDetectors};

/// Configuration of the Fig. 7 trajectory study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Environment (the paper uses Dense).
    pub environment: EnvironmentKind,
    /// Mission seed.
    pub seed: u64,
    /// Pipeline tick at which the fault fires.
    pub trigger_tick: u64,
    /// Which stage the fault targets (the paper shows perception and
    /// planning variants).
    pub fault_stage: Stage,
    /// Mission time budget (s).
    pub mission_time_budget: f64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Self {
            environment: EnvironmentKind::Dense,
            seed: 5,
            trigger_tick: 80,
            fault_stage: Stage::Planning,
            mission_time_budget: 400.0,
        }
    }
}

/// One flown trajectory with its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryRun {
    /// Setting label ("Golden", "Fault", "Fault + D&R").
    pub label: String,
    /// Sampled positions along the flight.
    pub trail: Vec<Vec3>,
    /// Flight time (s).
    pub flight_time_s: f64,
    /// Terminal status.
    pub status: MissionStatus,
}

impl TrajectoryRun {
    /// Renders the trajectory as `x,y,z` CSV lines (one per sample) for
    /// plotting.
    pub fn to_csv(&self) -> String {
        let mut csv = String::from("x,y,z\n");
        for point in &self.trail {
            let _ = writeln!(csv, "{:.3},{:.3},{:.3}", point.x, point.y, point.z);
        }
        csv
    }
}

/// Full Fig. 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Error-free flight.
    pub golden: TrajectoryRun,
    /// Flight with the injected fault and no protection.
    pub faulty: TrajectoryRun,
    /// Flight with the fault and autoencoder-based detection & recovery.
    pub recovered: TrajectoryRun,
}

impl Fig7Result {
    /// Summary table comparing the three flights.
    pub fn to_table(&self) -> String {
        let mut table =
            TextTable::new(["Run", "Status", "Flight time", "Inflation vs golden", "Trail points"]);
        for run in [&self.golden, &self.faulty, &self.recovered] {
            let inflation = if self.golden.flight_time_s > 0.0 {
                (run.flight_time_s - self.golden.flight_time_s) / self.golden.flight_time_s
            } else {
                0.0
            };
            table.push_row([
                run.label.clone(),
                format!("{:?}", run.status),
                seconds(run.flight_time_s),
                percent(inflation),
                run.trail.len().to_string(),
            ]);
        }
        table.render()
    }
}

/// Runs the Fig. 7 trajectory study.  The same one-time fault is injected in
/// the "faulty" and "recovered" flights; the recovered flight additionally
/// runs the autoencoder detection & recovery scheme.
///
/// # Errors
///
/// Propagates mission-runner errors.
pub fn run(config: &Fig7Config, detectors: &TrainedDetectors) -> Result<Fig7Result, MavfiError> {
    let spec = MissionSpec::new(config.environment, config.seed)
        .with_time_budget(config.mission_time_budget);
    let runner = MissionRunner::new(spec);

    // A sign/exponent corruption of a way-point coordinate (or the perceived
    // time-to-collision) reliably produces the detour the paper illustrates.
    let field = match config.fault_stage {
        Stage::Perception => StateField::TimeToCollision,
        Stage::Planning => StateField::WaypointX,
        Stage::Control => StateField::CommandVx,
    };
    let fault = FaultSpec {
        target: InjectionTarget::State(field),
        model: FaultModel::single_bit_in(BitField::Exponent),
        trigger_tick: config.trigger_tick,
        seed: config.seed ^ 0xf1_67,
    };

    let golden = runner.run_golden();
    let faulty = runner.run(Some(fault), Protection::None, None)?;
    let recovered = runner.run(Some(fault), Protection::Autoencoder, Some(detectors))?;

    Ok(Fig7Result {
        golden: TrajectoryRun {
            label: "Golden".to_owned(),
            trail: golden.trail,
            flight_time_s: golden.qof.flight_time_s,
            status: golden.qof.status,
        },
        faulty: TrajectoryRun {
            label: "Fault".to_owned(),
            trail: faulty.trail,
            flight_time_s: faulty.qof.flight_time_s,
            status: faulty.qof.status,
        },
        recovered: TrajectoryRun {
            label: "Fault + D&R".to_owned(),
            trail: recovered.trail,
            flight_time_s: recovered.qof.flight_time_s,
            status: recovered.qof.status,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run(label: &str, time: f64) -> TrajectoryRun {
        TrajectoryRun {
            label: label.to_owned(),
            trail: vec![Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)],
            flight_time_s: time,
            status: MissionStatus::Succeeded,
        }
    }

    #[test]
    fn csv_has_one_line_per_point_plus_header() {
        let run = fake_run("Golden", 100.0);
        let csv = run.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x,y,z"));
        assert!(csv.contains("1.000,2.000,3.000"));
    }

    #[test]
    fn table_reports_inflation_relative_to_golden() {
        let result = Fig7Result {
            golden: fake_run("Golden", 100.0),
            faulty: fake_run("Fault", 125.0),
            recovered: fake_run("Fault + D&R", 105.0),
        };
        let table = result.to_table();
        assert!(table.contains("25.0%"));
        assert!(table.contains("5.0%"));
    }
}
