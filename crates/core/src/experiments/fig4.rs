//! Fig. 4: fault tolerance of individual inter-kernel states (flight time
//! and success rate when a single bit flip corrupts each monitored state).

use mavfi_fault::campaign::{CampaignPlan, TriggerWindow};
use mavfi_fault::model::FaultModel;
use mavfi_fault::target::InjectionTarget;
use mavfi_ppc::states::{Stage, StateField};
use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::error::MavfiError;
use crate::exec::{CampaignExecutor, InjectionSweep};
use crate::qof::QofSummary;
use crate::report::{percent, seconds, TextTable};

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Environment (the paper uses Sparse).
    pub environment: EnvironmentKind,
    /// Injection runs per inter-kernel state (the paper uses 100).
    pub runs_per_state: usize,
    /// Golden runs for the baseline.
    pub golden_runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            environment: EnvironmentKind::Sparse,
            runs_per_state: 100,
            golden_runs: 100,
            base_seed: 40,
            mission_time_budget: 400.0,
        }
    }
}

impl Fig4Config {
    /// A reduced configuration for tests and quick benches.
    pub fn quick() -> Self {
        Self { runs_per_state: 2, golden_runs: 2, mission_time_budget: 240.0, ..Self::default() }
    }
}

/// Per-state result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSensitivity {
    /// The corrupted inter-kernel state.
    pub field: StateField,
    /// QoF summary over the injection runs.
    pub summary: QofSummary,
}

/// Full Fig. 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Error-free baseline.
    pub golden: QofSummary,
    /// One entry per monitored state, in [`StateField::ALL`] order.
    pub states: Vec<StateSensitivity>,
}

impl Fig4Result {
    /// Renders the per-state table grouped by stage, as in Fig. 4.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new([
            "Stage",
            "Inter-kernel state",
            "Success rate",
            "Mean flight time",
            "Max flight time",
            "Inflation vs golden",
        ]);
        table.push_row([
            "-".to_owned(),
            "Golden".to_owned(),
            percent(self.golden.success_rate),
            seconds(self.golden.mean_flight_time_s),
            seconds(self.golden.max_flight_time_s),
            "-".to_owned(),
        ]);
        for stage in Stage::ALL {
            for entry in self.states.iter().filter(|entry| entry.field.stage() == stage) {
                table.push_row([
                    stage.label().to_owned(),
                    entry.field.label().to_owned(),
                    percent(entry.summary.success_rate),
                    seconds(entry.summary.mean_flight_time_s),
                    seconds(entry.summary.max_flight_time_s),
                    percent(entry.summary.worst_case_inflation_vs(&self.golden)),
                ]);
            }
        }
        table.render()
    }
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates mission-runner errors.
pub fn run(config: &Fig4Config) -> Result<Fig4Result, MavfiError> {
    // Plan every injection up front through the fault crate's campaign
    // planner (same RNG consumption order as the original serial loops),
    // then hand golden + injection runs to the execution engine as one
    // sharded run list.
    let targets: Vec<InjectionTarget> =
        StateField::ALL.into_iter().map(InjectionTarget::State).collect();
    let sweep = InjectionSweep {
        environment: config.environment,
        base_seed: config.base_seed,
        mission_time_budget: config.mission_time_budget,
        golden_runs: config.golden_runs,
        runs_per_target: config.runs_per_state,
        plan: CampaignPlan::new(
            &targets,
            config.runs_per_state,
            FaultModel::default(),
            TriggerWindow::new(10, 300),
            config.base_seed ^ 0xf164,
        ),
    };
    let outcome = CampaignExecutor::from_env().run_sweep(&sweep)?;

    let states = StateField::ALL
        .iter()
        .zip(outcome.injected_groups(config.runs_per_state))
        .map(|(&field, summary)| StateSensitivity { field, summary })
        .collect();

    Ok(Fig4Result { golden: QofSummary::from_runs(&outcome.golden), states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::world::MissionStatus;

    #[test]
    fn table_lists_all_thirteen_states() {
        let summary = QofSummary::from_runs(&[crate::qof::QofMetrics {
            status: MissionStatus::Succeeded,
            flight_time_s: 90.0,
            energy_j: 900.0,
            distance_m: 270.0,
        }]);
        let result = Fig4Result {
            golden: summary.clone(),
            states: StateField::ALL
                .into_iter()
                .map(|field| StateSensitivity { field, summary: summary.clone() })
                .collect(),
        };
        let table = result.to_table();
        for field in StateField::ALL {
            assert!(table.contains(field.label()), "missing {field:?}");
        }
    }

    #[test]
    fn quick_config_covers_all_states_cheaply() {
        let config = Fig4Config::quick();
        assert!(config.runs_per_state * StateField::ALL.len() <= 30);
    }
}
