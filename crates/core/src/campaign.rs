//! Fault-injection campaigns: golden runs, injection runs and detection &
//! recovery runs over an environment, mirroring the paper's evaluation
//! protocol (§VI).

use std::sync::Arc;

use mavfi_fault::injector::FaultSpec;
use mavfi_ppc::states::Stage;
use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::error::MavfiError;
use crate::exec::{CampaignExecutor, SchemeConfig, WorkerPool};
use crate::qof::{QofMetrics, QofSummary};
use crate::runner::TrainedDetectors;

/// Configuration of one environment's campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Environment under test.
    pub environment: EnvironmentKind,
    /// Number of error-free golden runs.
    pub golden_runs: usize,
    /// Number of fault injections per PPC stage (the paper uses 100,
    /// giving 300 injection runs per environment).
    pub injections_per_stage: usize,
    /// Base seed; every run derives its own seed deterministically.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
}

impl CampaignConfig {
    /// A campaign sized like the paper's (100 golden + 100 injections per
    /// stage).
    pub fn paper_scale(environment: EnvironmentKind, base_seed: u64) -> Self {
        Self {
            environment,
            golden_runs: 100,
            injections_per_stage: 100,
            base_seed,
            mission_time_budget: 400.0,
        }
    }

    /// A reduced campaign suitable for tests and quick benches.
    pub fn quick(environment: EnvironmentKind, base_seed: u64) -> Self {
        Self {
            environment,
            golden_runs: 3,
            injections_per_stage: 2,
            base_seed,
            mission_time_budget: 240.0,
        }
    }
}

/// Aggregate result of one experiment setting (golden / injection / D&R).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingResult {
    /// Setting label ("Golden Run", "Injection Run", ...).
    pub label: String,
    /// Per-run QoF metrics.
    pub runs: Vec<QofMetrics>,
    /// Aggregate summary.
    pub summary: QofSummary,
}

impl SettingResult {
    pub(crate) fn new(label: impl Into<String>, runs: Vec<QofMetrics>) -> Self {
        let summary = QofSummary::from_runs(&runs);
        Self { label: label.into(), runs, summary }
    }
}

/// Full campaign result for one environment: the four rows of Table I and
/// the four distributions of one Fig. 6 subplot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentCampaign {
    /// Environment under test.
    pub environment: EnvironmentKind,
    /// Error-free baseline.
    pub golden: SettingResult,
    /// Faults injected, no protection.
    pub injected: SettingResult,
    /// Faults injected, Gaussian-based detection and recovery.
    pub gaussian: SettingResult,
    /// Faults injected, autoencoder-based detection and recovery.
    pub autoencoder: SettingResult,
    /// Total recomputations requested by the Gaussian scheme, per stage.
    pub gaussian_recomputations: Vec<(Stage, u64)>,
    /// Total recomputations requested by the autoencoder scheme, per stage.
    pub autoencoder_recomputations: Vec<(Stage, u64)>,
    /// Mean number of pipeline ticks per golden mission.
    pub golden_mean_ticks: f64,
    /// Mean nominal compute time per golden mission (ms, i9 latencies).
    pub golden_mean_compute_ms: f64,
}

impl EnvironmentCampaign {
    /// The four settings in Table I row order.
    pub fn settings(&self) -> [&SettingResult; 4] {
        [&self.golden, &self.injected, &self.gaussian, &self.autoencoder]
    }
}

/// Runs campaigns using a shared set of trained detectors.
///
/// This is a thin configuration wrapper around the
/// [`CampaignExecutor`] engine: every run's seed is a pure function of the
/// campaign base seed and the run index, the trained detectors are shared
/// immutably across workers, and results are folded in run-index order — so
/// campaign output is byte-identical for any worker count (see
/// `tests/parallel_determinism.rs`).
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    detectors: Arc<TrainedDetectors>,
    executor: CampaignExecutor,
}

impl CampaignRunner {
    /// Creates a campaign runner around trained detectors, parallelised
    /// according to `MAVFI_WORKERS` / available cores.
    pub fn new(detectors: TrainedDetectors) -> Self {
        Self { detectors: Arc::new(detectors), executor: CampaignExecutor::from_env() }
    }

    /// Overrides the worker pool used for mission fan-out.
    #[must_use]
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.executor = CampaignExecutor::with_pool(pool);
        self
    }

    /// Convenience for [`with_pool`](Self::with_pool) with a fixed worker
    /// count.
    #[must_use]
    pub fn with_workers(self, workers: usize) -> Self {
        self.with_pool(WorkerPool::new(workers))
    }

    /// The engine running this campaign's missions.
    pub fn executor(&self) -> CampaignExecutor {
        self.executor
    }

    /// The trained detectors used for the D&R settings.
    pub fn detectors(&self) -> &TrainedDetectors {
        &self.detectors
    }

    /// Builds the per-stage fault specifications of a campaign.
    pub fn plan_faults(config: &CampaignConfig) -> Vec<FaultSpec> {
        CampaignExecutor::plan_faults(config).specs().to_vec()
    }

    /// Runs the golden, injection and both D&R settings for one
    /// environment.
    ///
    /// # Errors
    ///
    /// Propagates runner errors (none are expected with trained detectors).
    pub fn run_environment(
        &self,
        config: &CampaignConfig,
    ) -> Result<EnvironmentCampaign, MavfiError> {
        self.executor.run_campaign(config, &SchemeConfig::shared(Arc::clone(&self.detectors)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingSpec;
    use crate::training::train_detectors;

    fn quick_detectors() -> TrainedDetectors {
        let spec =
            TrainingSpec { missions: 1, base_seed: 77, mission_time_budget: 25.0, epochs: 5 };
        train_detectors(&spec).0
    }

    #[test]
    fn fault_plan_covers_every_stage_equally() {
        let config = CampaignConfig::quick(EnvironmentKind::Sparse, 1);
        let faults = CampaignRunner::plan_faults(&config);
        assert_eq!(faults.len(), 3 * config.injections_per_stage);
        for stage in Stage::ALL {
            let count = faults.iter().filter(|f| f.target.stage() == stage).count();
            assert_eq!(count, config.injections_per_stage);
        }
    }

    #[test]
    fn quick_campaign_produces_all_four_settings() {
        let detectors = quick_detectors();
        let runner = CampaignRunner::new(detectors);
        let config = CampaignConfig {
            environment: EnvironmentKind::Farm,
            golden_runs: 1,
            injections_per_stage: 1,
            base_seed: 5,
            mission_time_budget: 120.0,
        };
        let campaign = runner.run_environment(&config).unwrap();
        assert_eq!(campaign.golden.runs.len(), 1);
        assert_eq!(campaign.injected.runs.len(), 3);
        assert_eq!(campaign.gaussian.runs.len(), 3);
        assert_eq!(campaign.autoencoder.runs.len(), 3);
        assert!(campaign.golden.summary.success_rate > 0.0, "farm golden run should succeed");
        for setting in campaign.settings() {
            assert_eq!(setting.summary.runs, setting.runs.len());
        }
    }
}
