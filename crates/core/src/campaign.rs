//! Fault-injection campaigns: golden runs, injection runs and detection &
//! recovery runs over an environment, mirroring the paper's evaluation
//! protocol (§VI).

use mavfi_fault::campaign::TriggerWindow;
use mavfi_fault::injector::FaultSpec;
use mavfi_fault::model::FaultModel;
use mavfi_fault::target::InjectionTarget;
use mavfi_ppc::states::Stage;
use mavfi_sim::env::EnvironmentKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{MissionSpec, Protection};
use crate::error::MavfiError;
use crate::qof::{QofMetrics, QofSummary};
use crate::runner::{MissionOutcome, MissionRunner, TrainedDetectors};

/// Configuration of one environment's campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Environment under test.
    pub environment: EnvironmentKind,
    /// Number of error-free golden runs.
    pub golden_runs: usize,
    /// Number of fault injections per PPC stage (the paper uses 100,
    /// giving 300 injection runs per environment).
    pub injections_per_stage: usize,
    /// Base seed; every run derives its own seed deterministically.
    pub base_seed: u64,
    /// Mission time budget per run (s).
    pub mission_time_budget: f64,
}

impl CampaignConfig {
    /// A campaign sized like the paper's (100 golden + 100 injections per
    /// stage).
    pub fn paper_scale(environment: EnvironmentKind, base_seed: u64) -> Self {
        Self {
            environment,
            golden_runs: 100,
            injections_per_stage: 100,
            base_seed,
            mission_time_budget: 400.0,
        }
    }

    /// A reduced campaign suitable for tests and quick benches.
    pub fn quick(environment: EnvironmentKind, base_seed: u64) -> Self {
        Self {
            environment,
            golden_runs: 3,
            injections_per_stage: 2,
            base_seed,
            mission_time_budget: 240.0,
        }
    }
}

/// Aggregate result of one experiment setting (golden / injection / D&R).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingResult {
    /// Setting label ("Golden Run", "Injection Run", ...).
    pub label: String,
    /// Per-run QoF metrics.
    pub runs: Vec<QofMetrics>,
    /// Aggregate summary.
    pub summary: QofSummary,
}

impl SettingResult {
    fn new(label: impl Into<String>, runs: Vec<QofMetrics>) -> Self {
        let summary = QofSummary::from_runs(&runs);
        Self { label: label.into(), runs, summary }
    }
}

/// Full campaign result for one environment: the four rows of Table I and
/// the four distributions of one Fig. 6 subplot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentCampaign {
    /// Environment under test.
    pub environment: EnvironmentKind,
    /// Error-free baseline.
    pub golden: SettingResult,
    /// Faults injected, no protection.
    pub injected: SettingResult,
    /// Faults injected, Gaussian-based detection and recovery.
    pub gaussian: SettingResult,
    /// Faults injected, autoencoder-based detection and recovery.
    pub autoencoder: SettingResult,
    /// Total recomputations requested by the Gaussian scheme, per stage.
    pub gaussian_recomputations: Vec<(Stage, u64)>,
    /// Total recomputations requested by the autoencoder scheme, per stage.
    pub autoencoder_recomputations: Vec<(Stage, u64)>,
    /// Mean number of pipeline ticks per golden mission.
    pub golden_mean_ticks: f64,
    /// Mean nominal compute time per golden mission (ms, i9 latencies).
    pub golden_mean_compute_ms: f64,
}

impl EnvironmentCampaign {
    /// The four settings in Table I row order.
    pub fn settings(&self) -> [&SettingResult; 4] {
        [&self.golden, &self.injected, &self.gaussian, &self.autoencoder]
    }
}

/// Runs campaigns using a shared set of trained detectors.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    detectors: TrainedDetectors,
}

impl CampaignRunner {
    /// Creates a campaign runner around trained detectors.
    pub fn new(detectors: TrainedDetectors) -> Self {
        Self { detectors }
    }

    /// The trained detectors used for the D&R settings.
    pub fn detectors(&self) -> &TrainedDetectors {
        &self.detectors
    }

    /// Builds the per-stage fault specifications of a campaign.
    pub fn plan_faults(config: &CampaignConfig) -> Vec<FaultSpec> {
        let mut rng = StdRng::seed_from_u64(config.base_seed ^ 0x5eed_fa01);
        let window = TriggerWindow::default();
        let mut specs = Vec::with_capacity(config.injections_per_stage * Stage::ALL.len());
        for stage in Stage::ALL {
            for _ in 0..config.injections_per_stage {
                specs.push(FaultSpec {
                    target: InjectionTarget::Stage(stage),
                    model: FaultModel::default(),
                    trigger_tick: rng.gen_range(window.start..window.end),
                    seed: rng.gen(),
                });
            }
        }
        specs
    }

    fn mission_spec(config: &CampaignConfig, run_index: u64) -> MissionSpec {
        MissionSpec::new(config.environment, config.base_seed.wrapping_add(run_index * 31 + 1))
            .with_time_budget(config.mission_time_budget)
    }

    /// Runs the golden, injection and both D&R settings for one
    /// environment.
    ///
    /// # Errors
    ///
    /// Propagates runner errors (none are expected with trained detectors).
    pub fn run_environment(&self, config: &CampaignConfig) -> Result<EnvironmentCampaign, MavfiError> {
        // Golden runs.
        let mut golden_runs = Vec::with_capacity(config.golden_runs);
        let mut golden_ticks = 0u64;
        let mut golden_compute_ms = 0.0;
        for index in 0..config.golden_runs {
            let spec = Self::mission_spec(config, index as u64);
            let outcome = MissionRunner::new(spec).run_golden();
            golden_ticks += outcome.pipeline.ticks;
            golden_compute_ms += outcome.pipeline.total_compute_ms();
            golden_runs.push(outcome.qof);
        }
        let golden_divisor = config.golden_runs.max(1) as f64;
        let golden_mean_ticks = golden_ticks as f64 / golden_divisor;
        let golden_mean_compute_ms = golden_compute_ms / golden_divisor;

        // Faulty runs under each protection setting, using the same fault
        // list for a paired comparison.
        let faults = Self::plan_faults(config);
        let mut injected_runs = Vec::with_capacity(faults.len());
        let mut gaussian_runs = Vec::with_capacity(faults.len());
        let mut autoencoder_runs = Vec::with_capacity(faults.len());
        let mut gaussian_recomputations: Vec<(Stage, u64)> =
            Stage::ALL.iter().map(|stage| (*stage, 0)).collect();
        let mut autoencoder_recomputations: Vec<(Stage, u64)> =
            Stage::ALL.iter().map(|stage| (*stage, 0)).collect();

        for (index, fault) in faults.iter().enumerate() {
            let spec = Self::mission_spec(config, index as u64);
            let runner = MissionRunner::new(spec);

            injected_runs.push(runner.run(Some(*fault), Protection::None, None)?.qof);

            let gaussian =
                runner.run(Some(*fault), Protection::Gaussian, Some(&self.detectors))?;
            Self::accumulate_recomputations(&gaussian, &mut gaussian_recomputations);
            gaussian_runs.push(gaussian.qof);

            let autoencoder =
                runner.run(Some(*fault), Protection::Autoencoder, Some(&self.detectors))?;
            Self::accumulate_recomputations(&autoencoder, &mut autoencoder_recomputations);
            autoencoder_runs.push(autoencoder.qof);
        }

        Ok(EnvironmentCampaign {
            environment: config.environment,
            golden: SettingResult::new("Golden Run", golden_runs),
            injected: SettingResult::new("Injection Run", injected_runs),
            gaussian: SettingResult::new("Gaussian-based", gaussian_runs),
            autoencoder: SettingResult::new("Autoencoder-based", autoencoder_runs),
            gaussian_recomputations,
            autoencoder_recomputations,
            golden_mean_ticks,
            golden_mean_compute_ms,
        })
    }

    fn accumulate_recomputations(outcome: &MissionOutcome, totals: &mut [(Stage, u64)]) {
        if let Some(stats) = &outcome.detector {
            for (stage, total) in totals.iter_mut() {
                *total += stats.recomputations.get(stage).copied().unwrap_or(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingSpec;
    use crate::training::train_detectors;

    fn quick_detectors() -> TrainedDetectors {
        let spec = TrainingSpec {
            missions: 1,
            base_seed: 77,
            mission_time_budget: 25.0,
            epochs: 5,
        };
        train_detectors(&spec).0
    }

    #[test]
    fn fault_plan_covers_every_stage_equally() {
        let config = CampaignConfig::quick(EnvironmentKind::Sparse, 1);
        let faults = CampaignRunner::plan_faults(&config);
        assert_eq!(faults.len(), 3 * config.injections_per_stage);
        for stage in Stage::ALL {
            let count = faults.iter().filter(|f| f.target.stage() == stage).count();
            assert_eq!(count, config.injections_per_stage);
        }
    }

    #[test]
    fn quick_campaign_produces_all_four_settings() {
        let detectors = quick_detectors();
        let runner = CampaignRunner::new(detectors);
        let config = CampaignConfig {
            environment: EnvironmentKind::Farm,
            golden_runs: 1,
            injections_per_stage: 1,
            base_seed: 5,
            mission_time_budget: 120.0,
        };
        let campaign = runner.run_environment(&config).unwrap();
        assert_eq!(campaign.golden.runs.len(), 1);
        assert_eq!(campaign.injected.runs.len(), 3);
        assert_eq!(campaign.gaussian.runs.len(), 3);
        assert_eq!(campaign.autoencoder.runs.len(), 3);
        assert!(campaign.golden.summary.success_rate > 0.0, "farm golden run should succeed");
        for setting in campaign.settings() {
            assert_eq!(setting.summary.runs, setting.runs.len());
        }
    }
}
