//! Report formatting and persistence: turning campaign results into the
//! paper-shaped tables printed by the benches and examples.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

use crate::campaign::EnvironmentCampaign;
use crate::error::MavfiError;

/// A simple fixed-width text table builder used by every experiment driver.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (index, cell) in self.header.iter().enumerate() {
            widths[index] = widths[index].max(cell.len());
        }
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut output = String::new();
        let render_row = |cells: &[String], widths: &[usize], output: &mut String| {
            for (index, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(index).unwrap_or(&empty);
                let _ = write!(output, "| {cell:<width$} ");
            }
            output.push_str("|\n");
        };
        render_row(&self.header, &widths, &mut output);
        for (index, width) in widths.iter().enumerate() {
            let _ = write!(output, "|{}", "-".repeat(width + 2));
            if index + 1 == widths.len() {
                output.push_str("|\n");
            }
        }
        for row in &self.rows {
            render_row(row, &widths, &mut output);
        }
        output
    }
}

/// Formats a percentage with one decimal, e.g. `95.0%`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats seconds with one decimal, e.g. `115.3 s`.
pub fn seconds(value: f64) -> String {
    format!("{value:.1} s")
}

/// Formats joules as kilojoules with one decimal, e.g. `61.7 kJ`.
pub fn kilojoules(joules: f64) -> String {
    format!("{:.1} kJ", joules / 1000.0)
}

/// Renders the Table I success-rate table from a list of per-environment
/// campaigns.
pub fn table1_success_rates(campaigns: &[EnvironmentCampaign]) -> String {
    let mut header = vec!["Environment".to_owned()];
    header.extend(campaigns.iter().map(|c| c.environment.label().to_owned()));
    let mut table = TextTable::new(header);
    let labels = ["Golden Run", "Injection Run", "Gaussian-based", "Autoencoder-based"];
    for (index, label) in labels.iter().enumerate() {
        let mut row = vec![(*label).to_owned()];
        for campaign in campaigns {
            let setting = campaign.settings()[index];
            row.push(percent(setting.summary.success_rate));
        }
        table.push_row(row);
    }
    table.render()
}

/// Renders the Fig. 6 flight-time summary (per environment: worst-case
/// inflation of the injection runs and worst-case recovery of both D&R
/// schemes).
pub fn fig6_flight_time_summary(campaigns: &[EnvironmentCampaign]) -> String {
    let mut table = TextTable::new([
        "Environment",
        "Golden max",
        "FI max",
        "FI inflation",
        "D&R(G) max",
        "G recovery",
        "D&R(A) max",
        "A recovery",
    ]);
    for campaign in campaigns {
        let golden = &campaign.golden.summary;
        let injected = &campaign.injected.summary;
        let gaussian = &campaign.gaussian.summary;
        let autoencoder = &campaign.autoencoder.summary;
        table.push_row([
            campaign.environment.label().to_owned(),
            seconds(golden.max_flight_time_s),
            seconds(injected.max_flight_time_s),
            percent(injected.worst_case_inflation_vs(golden)),
            seconds(gaussian.max_flight_time_s),
            percent(gaussian.recovery_vs(golden, injected)),
            seconds(autoencoder.max_flight_time_s),
            percent(autoencoder.recovery_vs(golden, injected)),
        ]);
    }
    table.render()
}

/// Serialises any result structure to pretty JSON on disk.
///
/// # Errors
///
/// Returns [`MavfiError::Io`] or [`MavfiError::Serialization`] on failure.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), MavfiError> {
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["Name", "Value"]);
        table.push_row(["alpha", "1"]);
        table.push_row(["a-much-longer-name", "12345"]);
        let rendered = table.render();
        assert!(rendered.contains("| Name"));
        assert!(rendered.contains("| a-much-longer-name | 12345 |"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Every line has the same length.
        let lengths: std::collections::HashSet<usize> = rendered.lines().map(str::len).collect();
        assert_eq!(lengths.len(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.953), "95.3%");
        assert_eq!(seconds(115.26), "115.3 s");
        assert_eq!(kilojoules(61_700.0), "61.7 kJ");
    }

    #[test]
    fn save_json_roundtrip() {
        let dir = std::env::temp_dir().join("mavfi_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        save_json(&vec![1, 2, 3], &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        std::fs::remove_file(path).ok();
    }
}
