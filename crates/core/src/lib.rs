//! # MAVFI — fault analysis with anomaly detection and recovery for MAVs
//!
//! `mavfi` is the top-level crate of a from-scratch Rust reproduction of
//! *"MAVFI: An End-to-End Fault Analysis Framework with Anomaly Detection
//! and Recovery for Micro Aerial Vehicles"* (DATE 2023).  It ties together
//! the workspace substrates — the simulated world ([`mavfi_sim`]), the
//! perception-planning-control pipeline ([`mavfi_ppc`]), the bit-flip fault
//! injector ([`mavfi_fault`]), the Gaussian and autoencoder detectors
//! ([`mavfi_detect`]) and the platform models ([`mavfi_platform`]) — into
//! mission runs, fault-injection campaigns, quality-of-flight reports and
//! the experiment drivers that regenerate every table and figure of the
//! paper's evaluation.
//!
//! # Examples
//!
//! Run one golden mission and one mission with a planning-stage bit flip:
//!
//! ```no_run
//! use mavfi::prelude::*;
//!
//! let spec = MissionSpec::new(EnvironmentKind::Sparse, 42);
//! let runner = MissionRunner::new(spec);
//!
//! let golden = runner.run_golden();
//! let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 50, 7);
//! let faulty = runner.run(Some(fault), Protection::None, None).unwrap();
//!
//! println!(
//!     "golden {:.1} s vs faulty {:.1} s",
//!     golden.qof.flight_time_s, faulty.qof.flight_time_s
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod config;
pub mod error;
pub mod exec;
pub mod experiments;
pub mod qof;
pub mod replay;
pub mod report;
pub mod runner;
pub mod serve;
pub mod trace;
pub mod training;

pub use campaign::{CampaignConfig, CampaignRunner, EnvironmentCampaign, SettingResult};
pub use config::{MissionSpec, Protection, TrainingSpec};
pub use error::MavfiError;
pub use exec::{
    run_campaign, run_campaign_instrumented, BatchMission, CampaignExecutor, CampaignFoldState,
    MissionBatch, SchemeConfig, TrainedDetectorCache, WorkerPool,
};
pub use qof::{QofMetrics, QofSummary};
pub use replay::{ReplayDivergence, ReplayHarness, ReplayReport};
pub use runner::{MissionOutcome, MissionRunner, TrainedDetectors};
pub use serve::{
    CampaignClient, CampaignProgress, CampaignRequest, CampaignServer, JobStatus, JobTicket,
    ServerError,
};
pub use trace::{DetectorProvenance, MissionTrace, TraceMeta, TraceTopic};
pub use training::{train_detectors, train_detectors_in};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::campaign::{CampaignConfig, CampaignRunner, EnvironmentCampaign, SettingResult};
    pub use crate::config::{MissionSpec, Protection, TrainingSpec};
    pub use crate::error::MavfiError;
    pub use crate::exec::{
        run_campaign, run_campaign_instrumented, BatchMission, CampaignExecutor, CampaignFoldState,
        MissionBatch, SchemeConfig, TrainedDetectorCache, WorkerPool,
    };
    pub use crate::qof::{QofMetrics, QofSummary};
    pub use crate::replay::{ReplayDivergence, ReplayHarness, ReplayReport};
    pub use crate::report::TextTable;
    pub use crate::runner::{MissionOutcome, MissionRunner, TrainedDetectors};
    pub use crate::serve::{
        CampaignClient, CampaignProgress, CampaignRequest, CampaignServer, JobStatus, JobTicket,
        ServerError,
    };
    pub use crate::trace::{DetectorProvenance, MissionTrace, TraceMeta, TraceTopic};
    pub use crate::training::{train_detectors, train_detectors_in};

    pub use mavfi_detect::prelude::*;
    pub use mavfi_fault::prelude::*;
    pub use mavfi_platform::prelude::*;
    pub use mavfi_ppc::prelude::*;
    pub use mavfi_sim::prelude::*;
    pub use mavfi_telemetry::prelude::*;
}
