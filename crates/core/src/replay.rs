//! Replaying recorded missions without the simulator in the loop.
//!
//! [`ReplayHarness`] rebuilds the recorded closed loop's deterministic half
//! — the PPC pipeline, the fault injector and the detector tap — from a
//! trace's [`TraceMeta`], re-drives it tick by tick from the recorded
//! *inputs* (vehicle states and depth rays; no [`World`], no dynamics, no
//! ray casting), and asserts that every recorded *output* record is
//! reproduced bit-for-bit, reporting the first divergent tick and topic
//! otherwise.  See `docs/REPLAY.md` for the determinism contract and the
//! divergence triage workflow.
//!
//! [`TraceMeta`]: crate::trace::TraceMeta
//! [`World`]: mavfi_sim::world::World

use mavfi_fault::injector::FaultInjector;
use mavfi_middleware::trace::{fold_digest, TraceError, TraceReader, DIGEST_SEED};
use mavfi_ppc::pipeline::{PpcConfig, PpcPipeline};
use mavfi_sim::geometry::Pose;
use mavfi_sim::sensors::{DepthFrame, RayHits};
use mavfi_sim::world::MissionStatus;

use crate::config::Protection;
use crate::error::MavfiError;
use crate::exec::TrainedDetectorCache;
use crate::qof::QofMetrics;
use crate::runner::{detector_tap, MissionTap, TrainedDetectors};
use crate::trace::{decode_mission_end, InputCodec, MissionTrace, OutputTracker, TraceTopic};

/// The first point at which a replay's outputs stopped matching the
/// recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Tick at which the divergence appeared.
    pub tick: u64,
    /// Topic whose record diverged.
    pub topic: TraceTopic,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// The outcome of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Ticks replayed (up to the divergence, if any).
    pub ticks: u64,
    /// The first divergence, or `None` for a bit-identical replay.
    pub divergence: Option<ReplayDivergence>,
    /// The recorded stream's footer digest (verified).
    pub stream_digest: u64,
    /// FNV-1a digest over the recorded output records.
    pub recorded_output_digest: u64,
    /// FNV-1a digest over the output records the replay produced.
    pub replayed_output_digest: u64,
    /// The recorded mission's final status, from its `MissionEnd` record.
    pub status: Option<MissionStatus>,
    /// The recorded mission's QoF totals, from its `MissionEnd` record.
    pub qof: Option<QofMetrics>,
}

impl ReplayReport {
    /// `true` when the replay reproduced every recorded output record
    /// bit-for-bit.
    pub fn is_match(&self) -> bool {
        self.divergence.is_none() && self.recorded_output_digest == self.replayed_output_digest
    }
}

/// Re-drives the ppc/detect stages of a recorded mission from its trace —
/// the simulator stays out of the loop.
///
/// # Examples
///
/// ```no_run
/// use mavfi::prelude::*;
/// use mavfi::replay::ReplayHarness;
///
/// let trace = MissionTrace::load("tests/golden/sparse_s3_golden.mvt").unwrap();
/// let report = ReplayHarness::new(&trace).replay().unwrap();
/// assert!(report.is_match(), "diverged: {:?}", report.divergence);
/// ```
#[derive(Debug)]
pub struct ReplayHarness<'a> {
    trace: &'a MissionTrace,
    detectors: Option<TrainedDetectors>,
}

impl<'a> ReplayHarness<'a> {
    /// Creates a harness for one trace.
    pub fn new(trace: &'a MissionTrace) -> Self {
        Self { trace, detectors: None }
    }

    /// Supplies trained detectors explicitly, overriding the trace's
    /// [`DetectorProvenance`](crate::trace::DetectorProvenance) (if any).
    pub fn with_detectors(mut self, detectors: &TrainedDetectors) -> Self {
        self.detectors = Some(detectors.clone());
        self
    }

    /// Replays the trace and reports whether every output matched.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Trace`] for a damaged trace,
    /// [`MavfiError::Serialization`] for an unreadable meta blob and
    /// [`MavfiError::MissingDetectors`] when the trace was recorded under a
    /// protection scheme but carries no detector provenance and none were
    /// supplied via [`ReplayHarness::with_detectors`].
    pub fn replay(&self) -> Result<ReplayReport, MavfiError> {
        let meta = self.trace.meta()?;
        let summary = self.trace.verify()?;

        // Detectors: explicit override, else retrain bit-identical ones
        // from the trace's provenance via the shared cache.
        let cached;
        let detectors: Option<&TrainedDetectors> = match (&self.detectors, meta.detectors) {
            (Some(detectors), _) => Some(detectors),
            (None, Some(provenance)) if !matches!(meta.protection, Protection::None) => {
                cached = TrainedDetectorCache::global()
                    .get_or_train(provenance.environment, &provenance.training);
                Some(&cached)
            }
            _ => None,
        };
        let detector = detector_tap(meta.protection, detectors)?;

        // Rebuild the deterministic half of the closed loop exactly as the
        // runner does — environment build is pure configuration (bounds,
        // start, goal); the world itself is never constructed.
        let spec = meta.spec;
        let environment = spec.environment.build(spec.seed);
        let ppc_config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
        let mut pipeline = PpcPipeline::new(ppc_config, environment.start(), environment.goal());
        let mut tap = MissionTap { injector: meta.fault.map(FaultInjector::new), detector };
        let camera = meta.camera;
        let dt = spec.control_period;

        let mut reader = TraceReader::new(self.trace.stream())?;
        let mut inputs = InputCodec::default();
        let mut tracker = OutputTracker::default();
        let mut expected: Vec<(TraceTopic, Vec<u8>)> = Vec::new();
        let mut rays = RayHits::default();
        let mut frame = DepthFrame::default();

        let mut ticks = 0u64;
        let mut divergence = None;
        let mut recorded_output_digest = DIGEST_SEED;
        let mut replayed_output_digest = DIGEST_SEED;
        let mut end = None;

        'stream: while let Some(record) = reader.next_record()? {
            let topic = TraceTopic::from_id(record.topic).ok_or_else(|| TraceError::Malformed {
                reason: format!("unknown topic id {}", record.topic),
            })?;
            match topic {
                TraceTopic::MissionEnd => {
                    end = Some(decode_mission_end(record.payload)?);
                }
                TraceTopic::VehicleState => {
                    let tick = record.tick;
                    let state = inputs.decode_state(record.payload)?;
                    let rays_record = reader.next_record()?.ok_or(TraceError::Truncated)?;
                    if rays_record.topic != TraceTopic::DepthRays.id() {
                        return Err(MavfiError::Trace(TraceError::Malformed {
                            reason: format!(
                                "tick {tick}: expected depth_rays after vehicle_state, found id {}",
                                rays_record.topic
                            ),
                        }));
                    }
                    inputs.decode_rays(rays_record.payload, &mut rays)?;

                    // Re-drive the pipeline from the recorded inputs.
                    let pose = Pose::new(state.position, state.yaw);
                    camera.resolve_rays(&pose, &rays, &mut frame);
                    let ppc_tick = pipeline.tick(&frame, &state, dt, &mut tap);

                    expected.clear();
                    tracker.emit(
                        &ppc_tick,
                        pipeline.trajectory(),
                        pipeline.trajectory_revision(),
                        tap.detector.as_ref().map(|detector| detector.stats()),
                        tap.injector.as_ref().and_then(|injector| injector.record()),
                        |topic, payload| expected.push((topic, payload.to_vec())),
                    );
                    for (expected_topic, expected_payload) in &expected {
                        replayed_output_digest =
                            fold_output(replayed_output_digest, *expected_topic, expected_payload);
                        let Some(recorded) = reader.next_record()? else {
                            divergence = Some(ReplayDivergence {
                                tick,
                                topic: *expected_topic,
                                detail: "replay produced a record past the end of the recording"
                                    .to_owned(),
                            });
                            break 'stream;
                        };
                        let recorded_topic =
                            TraceTopic::from_id(recorded.topic).unwrap_or(TraceTopic::MissionEnd);
                        recorded_output_digest =
                            fold_output(recorded_output_digest, recorded_topic, recorded.payload);
                        if recorded_topic != *expected_topic {
                            divergence = Some(ReplayDivergence {
                                tick,
                                topic: *expected_topic,
                                detail: format!(
                                    "replay produced a {} record where the recording has {}",
                                    expected_topic.name(),
                                    recorded_topic.name()
                                ),
                            });
                            break 'stream;
                        }
                        if recorded.payload != expected_payload.as_slice() {
                            divergence = Some(ReplayDivergence {
                                tick,
                                topic: *expected_topic,
                                detail: payload_diff(recorded.payload, expected_payload),
                            });
                            break 'stream;
                        }
                    }
                    ticks += 1;
                }
                other => {
                    // An output record the replay did not produce for the
                    // preceding tick.
                    recorded_output_digest =
                        fold_output(recorded_output_digest, other, record.payload);
                    divergence = Some(ReplayDivergence {
                        tick: record.tick,
                        topic: other,
                        detail: format!(
                            "recording has a {} record the replay did not produce",
                            other.name()
                        ),
                    });
                    break 'stream;
                }
            }
        }

        Ok(ReplayReport {
            ticks,
            divergence,
            stream_digest: summary.stream_digest,
            recorded_output_digest,
            replayed_output_digest,
            status: end.map(|(qof, _)| qof.status),
            qof: end.map(|(qof, _)| qof),
        })
    }
}

fn fold_output(digest: u64, topic: TraceTopic, payload: &[u8]) -> u64 {
    fold_digest(fold_digest(digest, &[topic.id()]), payload)
}

fn payload_diff(recorded: &[u8], replayed: &[u8]) -> String {
    if recorded.len() != replayed.len() {
        return format!(
            "payload length differs: recorded {} bytes, replayed {} bytes",
            recorded.len(),
            replayed.len()
        );
    }
    let offset = recorded.iter().zip(replayed).position(|(a, b)| a != b).unwrap_or(0);
    format!(
        "payload differs at byte {offset} of {}: recorded {:#04x}, replayed {:#04x}",
        recorded.len(),
        recorded[offset],
        replayed[offset]
    )
}
