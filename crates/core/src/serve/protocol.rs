//! Wire types of the campaign service: requests, tickets, streamed
//! progress, poll responses and the typed [`ServerError`] taxonomy.
//!
//! Everything a client exchanges with the server is plain data with serde
//! derives (diagnosable, loggable) and travels over the in-process
//! middleware as bus messages.  Service and topic names live here too, so
//! client and server cannot drift apart.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mavfi_sim::env::EnvironmentKind;
use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignConfig, EnvironmentCampaign};
use crate::config::TrainingSpec;
use crate::qof::QofSummary;

/// Name of the submission service ([`CampaignRequest`] →
/// `Result<JobTicket, ServerError>`).
pub const SUBMIT_SERVICE: &str = "campaign/submit";

/// Name of the status/poll service (`u64` job id →
/// `Result<JobStatus, ServerError>`).
pub const STATUS_SERVICE: &str = "campaign/status";

/// The per-job topic incremental [`CampaignProgress`] aggregates stream
/// over.
pub fn progress_topic(job_id: u64) -> String {
    format!("campaign/{job_id:016x}/progress")
}

/// One campaign submission: the campaign itself plus everything the server
/// needs to reproduce its detector bank and batching deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// The campaign to fly.
    pub config: CampaignConfig,
    /// Environment the detector training missions fly in (the paper uses
    /// randomized training environments).
    pub training_environment: EnvironmentKind,
    /// Detector training configuration; the server resolves the bank
    /// through the process-global `TrainedDetectorCache`, so equal specs
    /// train once.
    pub training: TrainingSpec,
    /// Campaign jobs per lockstep batch, pinned for the job's lifetime so
    /// checkpoint chunk boundaries stay stable across restarts.  `0` lets
    /// the server pin its own default at admission.
    pub batch_size: usize,
}

impl CampaignRequest {
    /// A small request suitable for tests and smoke runs: a quick campaign
    /// and a single-mission training spec.
    pub fn quick(environment: EnvironmentKind, base_seed: u64) -> Self {
        Self {
            config: CampaignConfig::quick(environment, base_seed),
            training_environment: EnvironmentKind::Randomized,
            training: TrainingSpec {
                missions: 1,
                base_seed: 77,
                mission_time_budget: 25.0,
                epochs: 5,
            },
            batch_size: 0,
        }
    }
}

/// The server's answer to a submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTicket {
    /// Content-derived job id: the digest of the admitted request, so
    /// resubmitting the same request (client retry, duplicate delivery)
    /// lands on the same job instead of flying it twice.
    pub job_id: u64,
    /// Topic the job's [`CampaignProgress`] updates stream on.
    pub progress_topic: String,
    /// Total number of checkpointable chunks the job splits into.
    pub chunks_total: u64,
    /// Chunks already folded at admission — non-zero when the job resumed
    /// from a checkpoint written before a server restart.
    pub chunks_done: u64,
    /// `true` when the request matched a job the server already knew
    /// (idempotent duplicate; no new work was enqueued).
    pub duplicate: bool,
}

/// One incremental aggregate streamed on a job's progress topic after every
/// checkpointed stride (and once more on completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignProgress {
    /// The job this update belongs to.
    pub job_id: u64,
    /// Chunks folded so far.
    pub chunks_done: u64,
    /// Total chunks of the job.
    pub chunks_total: u64,
    /// Campaign jobs folded so far (a fault job counts once).
    pub jobs_folded: u64,
    /// Golden-run aggregate over the runs folded so far.
    pub golden: QofSummary,
    /// Unprotected-injection aggregate over the runs folded so far.
    pub injected: QofSummary,
    /// D&R(G) aggregate over the runs folded so far.
    pub gaussian: QofSummary,
    /// D&R(A) aggregate over the runs folded so far.
    pub autoencoder: QofSummary,
    /// `true` on the job's final update.
    pub complete: bool,
}

/// Poll response of the status service.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job is admitted and (still) executing.
    Pending {
        /// Chunks folded so far.
        chunks_done: u64,
        /// Total chunks of the job.
        chunks_total: u64,
    },
    /// The job finished; the assembled campaign is shared, not copied.
    Complete(Arc<EnvironmentCampaign>),
}

impl JobStatus {
    /// The finished campaign, if the job is complete.
    pub fn result(&self) -> Option<&EnvironmentCampaign> {
        match self {
            Self::Complete(result) => Some(result),
            Self::Pending { .. } => None,
        }
    }
}

/// Typed failure taxonomy of the campaign service.  Every fault the
/// harness injects — corrupt checkpoints, unwritable directories, calls to
/// a dead server, malformed submissions — surfaces as one of these; the
/// server never panics on damaged input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServerError {
    /// The submitted campaign configuration is unusable.
    InvalidRequest {
        /// What is wrong with it.
        reason: String,
    },
    /// The polled job id is not (or no longer) known to this server.
    UnknownJob {
        /// The unknown id.
        job_id: u64,
    },
    /// A checkpoint failed its digest, magic, version or bounds checks.
    CheckpointCorrupt {
        /// Checkpoint file name.
        file: String,
        /// The underlying trace-layer error, rendered.
        detail: String,
    },
    /// Reading or writing checkpoint files failed at the I/O layer.
    CheckpointIo {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The service could not be reached over the bus (no server advertised,
    /// or a type-incompatible one).
    Unavailable {
        /// The middleware error, rendered.
        detail: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRequest { reason } => write!(f, "invalid campaign request: {reason}"),
            Self::UnknownJob { job_id } => write!(f, "unknown campaign job {job_id:016x}"),
            Self::CheckpointCorrupt { file, detail } => {
                write!(f, "checkpoint {file} is corrupt: {detail}")
            }
            Self::CheckpointIo { detail } => write!(f, "checkpoint i/o failed: {detail}"),
            Self::Unavailable { detail } => write!(f, "campaign service unavailable: {detail}"),
        }
    }
}

impl Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_topics_are_per_job() {
        assert_eq!(progress_topic(0x2a), "campaign/000000000000002a/progress");
        assert_ne!(progress_topic(1), progress_topic(2));
    }

    #[test]
    fn errors_render_their_context() {
        let err = ServerError::CheckpointCorrupt {
            file: "deadbeef.mvcp".into(),
            detail: "digest mismatch".into(),
        };
        assert!(err.to_string().contains("deadbeef.mvcp"));
        assert!(err.to_string().contains("digest mismatch"));
        assert!(ServerError::UnknownJob { job_id: 0xff }.to_string().contains("00000000000000ff"));
    }

    #[test]
    fn status_exposes_results_only_when_complete() {
        let pending = JobStatus::Pending { chunks_done: 1, chunks_total: 4 };
        assert!(pending.result().is_none());
    }
}
