//! The [`CampaignServer`] node: admits campaign submissions over the bus,
//! shards them across the worker pool in checkpointable strides, streams
//! incremental aggregates, and survives being killed at any point.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use mavfi_middleware::node::{Node, NodeContext, NodeError};
use mavfi_middleware::topic::Bus;
use mavfi_telemetry::{ServerCounters, TelemetryReport};

use crate::campaign::{CampaignConfig, EnvironmentCampaign};
use crate::error::MavfiError;
use crate::exec::{CampaignExecutor, CampaignFoldState, SchemeConfig};
use crate::serve::checkpoint::{request_job_id, CampaignCheckpoint};
use crate::serve::protocol::{
    progress_topic, CampaignProgress, CampaignRequest, JobStatus, JobTicket, ServerError,
    STATUS_SERVICE, SUBMIT_SERVICE,
};

/// Extension of a job's checkpoint file inside the checkpoint directory.
pub const CHECKPOINT_EXTENSION: &str = "mvcp";

/// One admitted campaign job.
struct Job {
    id: u64,
    request: CampaignRequest,
    chunks_total: u64,
    chunks_done: u64,
    state: CampaignFoldState,
    result: Option<Arc<EnvironmentCampaign>>,
    resumed: bool,
}

impl Job {
    fn status(&self) -> JobStatus {
        match &self.result {
            Some(result) => JobStatus::Complete(Arc::clone(result)),
            None => JobStatus::Pending {
                chunks_done: self.chunks_done,
                chunks_total: self.chunks_total,
            },
        }
    }
}

/// State shared between the node's step loop and the bus service handlers.
struct ServerState {
    executor: CampaignExecutor,
    checkpoint_dir: PathBuf,
    stride: u64,
    jobs: Vec<Job>,
    counters: ServerCounters,
    recovery_errors: Vec<ServerError>,
}

impl ServerState {
    fn find_job(&self, job_id: u64) -> Option<&Job> {
        self.jobs.iter().find(|job| job.id == job_id)
    }

    fn checkpoint_path(&self, job_id: u64) -> PathBuf {
        self.checkpoint_dir.join(format!("{job_id:016x}.{CHECKPOINT_EXTENSION}"))
    }

    fn chunk_executor(&self, request: &CampaignRequest) -> CampaignExecutor {
        self.executor.with_batch_size(request.batch_size)
    }

    fn admit(&mut self, request: CampaignRequest) -> Result<JobTicket, ServerError> {
        validate_config(&request.config)?;
        let mut request = request;
        if request.batch_size == 0 {
            request.batch_size = self.executor.batch_size();
        }
        let job_id = request_job_id(&request);
        if let Some((chunks_total, chunks_done)) =
            self.find_job(job_id).map(|job| (job.chunks_total, job.chunks_done))
        {
            self.counters.duplicate_submissions += 1;
            return Ok(JobTicket {
                job_id,
                progress_topic: progress_topic(job_id),
                chunks_total,
                chunks_done,
                duplicate: true,
            });
        }
        let chunks_total =
            self.chunk_executor(&request).campaign_chunk_count(&request.config) as u64;
        let job = Job {
            id: job_id,
            request,
            chunks_total,
            chunks_done: 0,
            state: CampaignFoldState::new(&request.config),
            result: None,
            resumed: false,
        };
        // Checkpoint the admission itself, so a server killed before the
        // first stride still resumes the job without a resubmission.  An
        // unwritable directory is counted, not fatal: the job can run from
        // memory and later checkpoints retry the write.
        let checkpoint =
            CampaignCheckpoint { request: job.request, chunks_done: 0, state: job.state.clone() };
        match checkpoint.save(&self.checkpoint_path(job_id)) {
            Ok(()) => self.counters.checkpoints_written += 1,
            Err(_) => self.counters.checkpoint_failures += 1,
        }
        self.jobs.push(job);
        self.counters.jobs_submitted += 1;
        Ok(JobTicket {
            job_id,
            progress_topic: progress_topic(job_id),
            chunks_total,
            chunks_done: 0,
            duplicate: false,
        })
    }

    fn status(&self, job_id: u64) -> Result<JobStatus, ServerError> {
        self.find_job(job_id).map(Job::status).ok_or(ServerError::UnknownJob { job_id })
    }
}

fn validate_config(config: &CampaignConfig) -> Result<(), ServerError> {
    if config.golden_runs == 0 && config.injections_per_stage == 0 {
        return Err(ServerError::InvalidRequest {
            reason: "campaign has no runs (golden_runs and injections_per_stage are both 0)".into(),
        });
    }
    if !config.mission_time_budget.is_finite() || config.mission_time_budget <= 0.0 {
        return Err(ServerError::InvalidRequest {
            reason: format!("mission_time_budget {} is not positive", config.mission_time_budget),
        });
    }
    Ok(())
}

/// A long-running campaign service on the in-repo middleware.
///
/// The server is a middleware [`Node`]: [`CampaignServer::attach`]
/// advertises the submit/status services on a [`Bus`], and every scheduled
/// [`step`](Node::step) executes up to
/// [`checkpoint_stride`](Self::with_checkpoint_stride) chunks of the oldest
/// unfinished job through the shared [`CampaignExecutor`], persists a
/// digest-checked checkpoint, and publishes a [`CampaignProgress`]
/// aggregate on the job's topic.
///
/// Killing the process (or just dropping the server) between — or during —
/// steps loses nothing: a new server pointed at the same checkpoint
/// directory re-admits every checkpointed job and continues folding from
/// the last persisted chunk, and the final [`EnvironmentCampaign`] is
/// byte-identical to an uninterrupted serve and to library
/// [`run_campaign`](crate::exec::run_campaign) (see
/// `tests/server_faults.rs`, `docs/SERVING.md`).
pub struct CampaignServer {
    shared: Arc<Mutex<ServerState>>,
    period: Duration,
}

impl std::fmt::Debug for CampaignServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.shared);
        f.debug_struct("CampaignServer")
            .field("checkpoint_dir", &state.checkpoint_dir)
            .field("jobs", &state.jobs.len())
            .field("stride", &state.stride)
            .finish()
    }
}

/// Locks the shared state, recovering from a poisoned lock (a panicking
/// step must not wedge the services).
fn lock(shared: &Arc<Mutex<ServerState>>) -> MutexGuard<'_, ServerState> {
    shared.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CampaignServer {
    /// Default simulated-time interval between server steps.
    pub const DEFAULT_PERIOD: Duration = Duration::from_millis(10);

    /// Creates a server persisting to `checkpoint_dir` (created if missing)
    /// and resumes every verifiable checkpoint found there.
    ///
    /// Corrupt or truncated checkpoint files are *not* errors: each is
    /// recorded as a typed [`ServerError`] in
    /// [`recovery_errors`](Self::recovery_errors) and counted, and the file
    /// is left in place — a resubmission of the same request lands on the
    /// same job id and overwrites it with a fresh checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Io`] when the checkpoint directory cannot be
    /// created or listed.
    pub fn new(
        executor: CampaignExecutor,
        checkpoint_dir: impl Into<PathBuf>,
    ) -> Result<Self, MavfiError> {
        let checkpoint_dir = checkpoint_dir.into();
        std::fs::create_dir_all(&checkpoint_dir)?;
        let mut state = ServerState {
            executor,
            checkpoint_dir,
            stride: 1,
            jobs: Vec::new(),
            counters: ServerCounters::default(),
            recovery_errors: Vec::new(),
        };
        // Deterministic resume order: sorted file names, i.e. job ids.
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&state.checkpoint_dir)?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == CHECKPOINT_EXTENSION))
            .collect();
        paths.sort();
        for path in paths {
            match CampaignCheckpoint::load(&path) {
                Ok(checkpoint) => {
                    state.counters.checkpoints_loaded += 1;
                    state.counters.jobs_resumed += 1;
                    let chunks_total = state
                        .chunk_executor(&checkpoint.request)
                        .campaign_chunk_count(&checkpoint.request.config)
                        as u64;
                    let result = (checkpoint.chunks_done >= chunks_total).then(|| {
                        Arc::new(checkpoint.state.clone().finish(&checkpoint.request.config))
                    });
                    state.jobs.push(Job {
                        id: checkpoint.job_id(),
                        request: checkpoint.request,
                        chunks_total,
                        chunks_done: checkpoint.chunks_done,
                        state: checkpoint.state,
                        result,
                        resumed: true,
                    });
                }
                Err(error) => {
                    state.counters.checkpoints_corrupt += 1;
                    let file = path
                        .file_name()
                        .map(|name| name.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    state.recovery_errors.push(match error {
                        MavfiError::Trace(trace) => {
                            ServerError::CheckpointCorrupt { file, detail: trace.to_string() }
                        }
                        other => ServerError::CheckpointIo { detail: format!("{file}: {other}") },
                    });
                }
            }
        }
        Ok(Self { shared: Arc::new(Mutex::new(state)), period: Self::DEFAULT_PERIOD })
    }

    /// Sets how many chunks each step executes before checkpointing and
    /// publishing progress (minimum 1, default 1).
    #[must_use]
    pub fn with_checkpoint_stride(self, stride: usize) -> Self {
        lock(&self.shared).stride = stride.max(1) as u64;
        self
    }

    /// Sets the node's scheduling period.
    #[must_use]
    pub fn with_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Advertises the submit and status services on `bus`.  Call before
    /// handing the server to an executor.
    pub fn attach(&self, bus: &Bus) {
        let shared = Arc::clone(&self.shared);
        bus.advertise_service::<CampaignRequest, Result<JobTicket, ServerError>, _>(
            SUBMIT_SERVICE,
            move |request| lock(&shared).admit(request),
        );
        let shared = Arc::clone(&self.shared);
        bus.advertise_service::<u64, Result<JobStatus, ServerError>, _>(
            STATUS_SERVICE,
            move |job_id| lock(&shared).status(job_id),
        );
    }

    /// Unregisters the services, as a shutting-down node would.  Pending
    /// jobs and checkpoints stay intact; clients calling afterwards get
    /// typed [`ServerError::Unavailable`] errors from the client wrapper.
    pub fn detach(bus: &Bus) {
        bus.remove_service(SUBMIT_SERVICE);
        bus.remove_service(STATUS_SERVICE);
    }

    /// Typed errors produced while scanning the checkpoint directory at
    /// startup (one per unreadable or corrupt file).
    pub fn recovery_errors(&self) -> Vec<ServerError> {
        lock(&self.shared).recovery_errors.clone()
    }

    /// Snapshot of the server's activity counters.
    pub fn counters(&self) -> ServerCounters {
        lock(&self.shared).counters
    }

    /// The server's counters folded into a [`TelemetryReport`], the same
    /// rollup shape campaign missions report through — and stripped by its
    /// `deterministic_view`, since kill/resume history must never leak
    /// into results.
    pub fn telemetry_report(&self) -> TelemetryReport {
        TelemetryReport { server: self.counters(), ..TelemetryReport::new() }
    }

    /// `true` when every admitted job has produced its final campaign.
    pub fn idle(&self) -> bool {
        lock(&self.shared).jobs.iter().all(|job| job.result.is_some())
    }

    /// Runs one checkpointed stride of the oldest unfinished job and
    /// publishes its progress on `bus`.  Returns `false` when there was no
    /// work.  This is the body of [`Node::step`], callable directly by
    /// drivers that do not schedule the server on an executor.
    ///
    /// # Errors
    ///
    /// Mission failures and checkpoint-write failures surface as
    /// [`NodeError`]s — the executor records them (with reason) in its
    /// registry and restarts the node; in-memory fold state is unaffected,
    /// so the job continues on the next step.
    pub fn step_once(&self, bus: &Bus) -> Result<bool, NodeError> {
        let mut state = lock(&self.shared);
        let state = &mut *state;
        let Some(job) = state.jobs.iter_mut().find(|job| job.result.is_none()) else {
            return Ok(false);
        };
        let executor = state.executor.with_batch_size(job.request.batch_size);
        let scheme = SchemeConfig::cached(job.request.training_environment, job.request.training);
        let start = job.chunks_done as usize;
        let end = (job.chunks_done + state.stride).min(job.chunks_total) as usize;
        executor
            .run_campaign_chunks(&job.request.config, &scheme, start..end, &mut job.state)
            .map_err(|error| NodeError::new(format!("job {:016x}: {error}", job.id)))?;
        job.chunks_done = end as u64;
        state.counters.chunks_executed += (end - start) as u64;
        if job.chunks_done >= job.chunks_total {
            job.result = Some(Arc::new(job.state.clone().finish(&job.request.config)));
            state.counters.jobs_completed += 1;
        }

        let checkpoint = CampaignCheckpoint {
            request: job.request,
            chunks_done: job.chunks_done,
            state: job.state.clone(),
        };
        let path = state.checkpoint_dir.join(format!("{:016x}.{CHECKPOINT_EXTENSION}", job.id));
        let checkpoint_outcome = checkpoint.save(&path);

        let summaries = job.state.partial_summaries();
        let [golden, injected, gaussian, autoencoder] = summaries;
        bus.advertise::<CampaignProgress>(&progress_topic(job.id)).publish(CampaignProgress {
            job_id: job.id,
            chunks_done: job.chunks_done,
            chunks_total: job.chunks_total,
            jobs_folded: job.state.jobs_folded() as u64,
            golden,
            injected,
            gaussian,
            autoencoder,
            complete: job.result.is_some(),
        });
        state.counters.progress_updates += 1;

        match checkpoint_outcome {
            Ok(()) => {
                state.counters.checkpoints_written += 1;
                Ok(true)
            }
            Err(error) => {
                state.counters.checkpoint_failures += 1;
                Err(NodeError::new(format!(
                    "checkpoint write failed for job {:016x}: {error}",
                    job.id
                )))
            }
        }
    }

    /// Number of jobs currently admitted (pending or complete).
    pub fn job_count(&self) -> usize {
        lock(&self.shared).jobs.len()
    }

    /// Ids of resumed jobs, for observability.
    pub fn resumed_job_ids(&self) -> Vec<u64> {
        lock(&self.shared).jobs.iter().filter(|job| job.resumed).map(|job| job.id).collect()
    }

    /// The on-disk checkpoint path of a job id under this server's
    /// checkpoint directory.
    pub fn checkpoint_path(&self, job_id: u64) -> PathBuf {
        lock(&self.shared).checkpoint_path(job_id)
    }

    /// The checkpoint directory this server persists to.
    pub fn checkpoint_dir(&self) -> PathBuf {
        lock(&self.shared).checkpoint_dir.clone()
    }
}

/// Removes every checkpoint file from `dir` (used by drivers that want a
/// fresh campaign store); other files are left alone.
///
/// # Errors
///
/// Returns [`MavfiError::Io`] when the directory cannot be listed or a
/// checkpoint cannot be removed.
pub fn clear_checkpoints(dir: &Path) -> Result<usize, MavfiError> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == CHECKPOINT_EXTENSION) {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

impl Node for CampaignServer {
    fn name(&self) -> &str {
        "campaign_server"
    }

    fn period(&self) -> Duration {
        self.period
    }

    fn step(&mut self, ctx: &mut NodeContext<'_>) -> Result<(), NodeError> {
        self.step_once(ctx.bus).map(|_| ())
    }
}
