//! Versioned, digest-checked binary checkpoints of in-flight campaign
//! jobs.
//!
//! A checkpoint captures everything needed to resume a served campaign
//! bit-identically after a process restart: the admitted
//! [`CampaignRequest`] (with its batch size pinned, so chunk boundaries
//! stay stable), the number of chunks already folded, and the
//! [`CampaignFoldState`] those chunks produced.  `f64`s are stored as raw
//! IEEE-754 bit patterns — a decoded state is the *same bytes*, not a
//! nearest-value reparse — which is what makes resume-equals-uninterrupted
//! an equality of bits rather than of tolerances.
//!
//! ```text
//! checkpoint: magic "MVCP" · u16 version · payload · u64 FNV-1a digest
//! payload:    request · varint chunks_done · fold state
//! ```
//!
//! The digest covers magic, version and payload, using the same FNV-1a
//! fold as `.mvt` trace streams; a flipped byte anywhere surfaces as
//! [`TraceError::DigestMismatch`], never as a panic or a silently wrong
//! resume.

use std::path::Path;

use mavfi_middleware::trace::{fold_digest, write_varint, ByteReader, TraceError, DIGEST_SEED};
use mavfi_ppc::states::Stage;
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::world::MissionStatus;

use crate::campaign::CampaignConfig;
use crate::config::TrainingSpec;
use crate::error::MavfiError;
use crate::exec::CampaignFoldState;
use crate::qof::QofMetrics;
use crate::serve::protocol::CampaignRequest;

/// Magic bytes opening a campaign checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"MVCP";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// The resumable on-disk state of one campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// The admitted request; `batch_size` is always resolved (non-zero).
    pub request: CampaignRequest,
    /// Chunks already folded into `state`.
    pub chunks_done: u64,
    /// The fold state those chunks produced.
    pub state: CampaignFoldState,
}

/// Content-derived job id: the FNV-1a digest of the request's canonical
/// encoding.  Equal requests — including retried or duplicated submissions
/// — map to equal ids.
pub fn request_job_id(request: &CampaignRequest) -> u64 {
    let mut bytes = Vec::with_capacity(96);
    encode_request(&mut bytes, request);
    fold_digest(DIGEST_SEED, &bytes)
}

impl CampaignCheckpoint {
    /// The job id of the checkpointed request.
    pub fn job_id(&self) -> u64 {
        request_job_id(&self.request)
    }

    /// Serialises the checkpoint to its framed binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        encode_request(&mut out, &self.request);
        write_varint(&mut out, self.chunks_done);
        encode_state(&mut out, &self.state);
        let digest = fold_digest(DIGEST_SEED, &out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Parses and verifies a framed checkpoint.
    ///
    /// # Errors
    ///
    /// Typed, never a panic: [`TraceError::BadMagic`] for foreign files,
    /// [`TraceError::UnsupportedVersion`] for newer formats,
    /// [`TraceError::DigestMismatch`] for any flipped byte,
    /// [`TraceError::Truncated`] / [`TraceError::Malformed`] for cut or
    /// inconsistent payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 8 + 6 {
            return Err(TraceError::Truncated);
        }
        let (body, footer) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(footer.try_into().expect("footer is eight bytes"));
        let mut reader = ByteReader::new(body);
        let magic: [u8; 4] =
            reader.read_exact(4)?.try_into().expect("read_exact returned four bytes");
        if magic != CHECKPOINT_MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let version = reader.read_u16_le()?;
        if version != CHECKPOINT_VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        // Verify the digest before trusting any decoded lengths.
        let found = fold_digest(DIGEST_SEED, body);
        if found != expected {
            return Err(TraceError::DigestMismatch { expected, found });
        }
        let request = decode_request(&mut reader)?;
        let chunks_done = reader.read_varint()?;
        let state = decode_state(&mut reader)?;
        if !reader.is_empty() {
            return Err(TraceError::Malformed {
                reason: format!("{} trailing bytes after fold state", reader.remaining()),
            });
        }
        Ok(Self { request, chunks_done, state })
    }

    /// Writes the checkpoint to `path` atomically (temporary file plus
    /// rename), so a kill mid-write leaves the previous checkpoint intact
    /// rather than a torn one.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Io`] when the directory is missing or
    /// unwritable.
    pub fn save(&self, path: &Path) -> Result<(), MavfiError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Io`] for unreadable files and
    /// [`MavfiError::Trace`] for files that fail decoding or verification.
    pub fn load(path: &Path) -> Result<Self, MavfiError> {
        let bytes = std::fs::read(path)?;
        Ok(Self::decode(&bytes)?)
    }
}

fn environment_code(environment: EnvironmentKind) -> u8 {
    match environment {
        EnvironmentKind::Factory => 0,
        EnvironmentKind::Farm => 1,
        EnvironmentKind::Sparse => 2,
        EnvironmentKind::Dense => 3,
        EnvironmentKind::Randomized => 4,
        // `EnvironmentKind` is non-exhaustive; a variant added without a
        // code here encodes as 0xFF, which decode rejects as malformed
        // instead of silently aliasing an existing environment.
        _ => u8::MAX,
    }
}

fn environment_from_code(code: u8) -> Result<EnvironmentKind, TraceError> {
    Ok(match code {
        0 => EnvironmentKind::Factory,
        1 => EnvironmentKind::Farm,
        2 => EnvironmentKind::Sparse,
        3 => EnvironmentKind::Dense,
        4 => EnvironmentKind::Randomized,
        other => {
            return Err(TraceError::Malformed { reason: format!("unknown environment {other}") })
        }
    })
}

fn status_code(status: MissionStatus) -> u8 {
    match status {
        MissionStatus::InProgress => 0,
        MissionStatus::Succeeded => 1,
        MissionStatus::Collided => 2,
        MissionStatus::TimedOut => 3,
    }
}

fn status_from_code(code: u8) -> Result<MissionStatus, TraceError> {
    Ok(match code {
        0 => MissionStatus::InProgress,
        1 => MissionStatus::Succeeded,
        2 => MissionStatus::Collided,
        3 => MissionStatus::TimedOut,
        other => {
            return Err(TraceError::Malformed { reason: format!("unknown mission status {other}") })
        }
    })
}

fn write_f64_bits(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn read_f64_bits(reader: &mut ByteReader<'_>) -> Result<f64, TraceError> {
    Ok(f64::from_bits(reader.read_u64_le()?))
}

fn encode_request(out: &mut Vec<u8>, request: &CampaignRequest) {
    out.push(environment_code(request.config.environment));
    write_varint(out, request.config.golden_runs as u64);
    write_varint(out, request.config.injections_per_stage as u64);
    out.extend_from_slice(&request.config.base_seed.to_le_bytes());
    write_f64_bits(out, request.config.mission_time_budget);
    out.push(environment_code(request.training_environment));
    write_varint(out, request.training.missions as u64);
    out.extend_from_slice(&request.training.base_seed.to_le_bytes());
    write_f64_bits(out, request.training.mission_time_budget);
    write_varint(out, request.training.epochs as u64);
    write_varint(out, request.batch_size as u64);
}

fn decode_request(reader: &mut ByteReader<'_>) -> Result<CampaignRequest, TraceError> {
    let environment = environment_from_code(reader.read_u8()?)?;
    let golden_runs = reader.read_varint()? as usize;
    let injections_per_stage = reader.read_varint()? as usize;
    let base_seed = reader.read_u64_le()?;
    let mission_time_budget = read_f64_bits(reader)?;
    let config = CampaignConfig {
        environment,
        golden_runs,
        injections_per_stage,
        base_seed,
        mission_time_budget,
    };
    let training_environment = environment_from_code(reader.read_u8()?)?;
    let training = TrainingSpec {
        missions: reader.read_varint()? as usize,
        base_seed: reader.read_u64_le()?,
        mission_time_budget: read_f64_bits(reader)?,
        epochs: reader.read_varint()? as usize,
    };
    let batch_size = reader.read_varint()? as usize;
    Ok(CampaignRequest { config, training_environment, training, batch_size })
}

fn encode_runs(out: &mut Vec<u8>, runs: &[QofMetrics]) {
    write_varint(out, runs.len() as u64);
    for run in runs {
        out.push(status_code(run.status));
        write_f64_bits(out, run.flight_time_s);
        write_f64_bits(out, run.energy_j);
        write_f64_bits(out, run.distance_m);
    }
}

fn decode_runs(reader: &mut ByteReader<'_>) -> Result<Vec<QofMetrics>, TraceError> {
    let count = reader.read_varint()? as usize;
    // Eight bytes is a cheap lower bound per run; it rejects absurd
    // lengths from (pre-digest-check) hostile input without large upfront
    // allocations.
    if count > reader.remaining() / 8 {
        return Err(TraceError::Truncated);
    }
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        runs.push(QofMetrics {
            status: status_from_code(reader.read_u8()?)?,
            flight_time_s: read_f64_bits(reader)?,
            energy_j: read_f64_bits(reader)?,
            distance_m: read_f64_bits(reader)?,
        });
    }
    Ok(runs)
}

fn encode_recomputations(out: &mut Vec<u8>, totals: &[(Stage, u64)]) {
    write_varint(out, totals.len() as u64);
    for (stage, count) in totals {
        out.push(stage.index() as u8);
        out.extend_from_slice(&count.to_le_bytes());
    }
}

fn decode_recomputations(reader: &mut ByteReader<'_>) -> Result<Vec<(Stage, u64)>, TraceError> {
    let count = reader.read_varint()? as usize;
    if count > reader.remaining() / 9 {
        return Err(TraceError::Truncated);
    }
    let mut totals = Vec::with_capacity(count);
    for _ in 0..count {
        let index = reader.read_u8()? as usize;
        let stage = *Stage::ALL.get(index).ok_or_else(|| TraceError::Malformed {
            reason: format!("unknown stage index {index}"),
        })?;
        totals.push((stage, reader.read_u64_le()?));
    }
    Ok(totals)
}

fn encode_state(out: &mut Vec<u8>, state: &CampaignFoldState) {
    encode_runs(out, &state.golden_runs);
    out.extend_from_slice(&state.golden_ticks.to_le_bytes());
    write_f64_bits(out, state.golden_compute_ms);
    encode_runs(out, &state.injected_runs);
    encode_runs(out, &state.gaussian_runs);
    encode_runs(out, &state.autoencoder_runs);
    encode_recomputations(out, &state.gaussian_recomputations);
    encode_recomputations(out, &state.autoencoder_recomputations);
}

fn decode_state(reader: &mut ByteReader<'_>) -> Result<CampaignFoldState, TraceError> {
    Ok(CampaignFoldState {
        golden_runs: decode_runs(reader)?,
        golden_ticks: reader.read_u64_le()?,
        golden_compute_ms: read_f64_bits(reader)?,
        injected_runs: decode_runs(reader)?,
        gaussian_runs: decode_runs(reader)?,
        autoencoder_runs: decode_runs(reader)?,
        gaussian_recomputations: decode_recomputations(reader)?,
        autoencoder_recomputations: decode_recomputations(reader)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> CampaignCheckpoint {
        let mut request = CampaignRequest::quick(EnvironmentKind::Sparse, 11);
        request.batch_size = 4;
        let mut state = CampaignFoldState::new(&request.config);
        state.golden_runs.push(QofMetrics {
            status: MissionStatus::Succeeded,
            flight_time_s: 123.456,
            energy_j: 7_890.12,
            distance_m: 345.678,
        });
        state.golden_ticks = 4_242;
        state.golden_compute_ms = 99.5;
        state.injected_runs.push(QofMetrics {
            status: MissionStatus::Collided,
            flight_time_s: 12.0,
            energy_j: 340.0,
            distance_m: 36.0,
        });
        state.gaussian_recomputations[1].1 = 17;
        CampaignCheckpoint { request, chunks_done: 3, state }
    }

    #[test]
    fn round_trip_is_exact() {
        let checkpoint = sample_checkpoint();
        let decoded = CampaignCheckpoint::decode(&checkpoint.encode()).unwrap();
        assert_eq!(decoded, checkpoint);
        // Bit-level, not just PartialEq: re-encoding reproduces the bytes.
        assert_eq!(decoded.encode(), checkpoint.encode());
    }

    #[test]
    fn job_ids_depend_on_the_request_not_the_progress() {
        let mut checkpoint = sample_checkpoint();
        let id = checkpoint.job_id();
        checkpoint.chunks_done += 1;
        assert_eq!(checkpoint.job_id(), id);
        checkpoint.request.config.base_seed ^= 1;
        assert_ne!(checkpoint.job_id(), id);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample_checkpoint().encode();
        for index in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0x40;
            let error = CampaignCheckpoint::decode(&corrupt)
                .expect_err("a flipped byte must not decode cleanly");
            match error {
                TraceError::BadMagic { .. }
                | TraceError::UnsupportedVersion { .. }
                | TraceError::DigestMismatch { .. }
                | TraceError::Truncated
                | TraceError::Malformed { .. } => {}
                other => panic!("unexpected error for flip at {index}: {other:?}"),
            }
        }
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = sample_checkpoint().encode();
        for len in 0..bytes.len() {
            assert!(CampaignCheckpoint::decode(&bytes[..len]).is_err(), "length {len}");
        }
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let checkpoint = sample_checkpoint();
        let dir = std::env::temp_dir().join(format!("mavfi_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.mvcp");
        checkpoint.save(&path).unwrap();
        assert_eq!(CampaignCheckpoint::load(&path).unwrap(), checkpoint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_are_io_errors_not_trace_errors() {
        let err = CampaignCheckpoint::load(Path::new("/nonexistent/job.mvcp")).unwrap_err();
        assert!(matches!(err, MavfiError::Io(_)));
    }
}
