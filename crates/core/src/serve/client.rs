//! Typed client driver for the campaign service.

use std::sync::Arc;

use mavfi_middleware::topic::{Bus, Subscriber};

use crate::campaign::EnvironmentCampaign;
use crate::serve::protocol::{
    progress_topic, CampaignProgress, CampaignRequest, JobStatus, JobTicket, ServerError,
    STATUS_SERVICE, SUBMIT_SERVICE,
};

/// A submitting client: wraps the bus services in typed calls and folds
/// middleware-level failures (no server advertised, incompatible types)
/// into the same [`ServerError`] taxonomy the server itself speaks — a
/// client never sees a panic or an untyped error, whether the server is
/// alive, restarted or gone.
#[derive(Debug, Clone)]
pub struct CampaignClient {
    bus: Bus,
}

impl CampaignClient {
    /// A client on `bus`.
    pub fn new(bus: &Bus) -> Self {
        Self { bus: bus.clone() }
    }

    /// Submits a campaign.  Resubmitting an identical request is safe: the
    /// server recognises the duplicate and returns the existing job's
    /// ticket instead of flying it twice.
    ///
    /// # Errors
    ///
    /// [`ServerError::Unavailable`] when no server answers;
    /// [`ServerError::InvalidRequest`] when the server rejects the config.
    pub fn submit(&self, request: &CampaignRequest) -> Result<JobTicket, ServerError> {
        self.bus
            .call_service::<CampaignRequest, Result<JobTicket, ServerError>>(
                SUBMIT_SERVICE,
                *request,
            )
            .map_err(|error| ServerError::Unavailable { detail: error.to_string() })?
    }

    /// Polls a job's status.
    ///
    /// # Errors
    ///
    /// [`ServerError::Unavailable`] when no server answers;
    /// [`ServerError::UnknownJob`] when this server never admitted (or
    /// could not resume) the job.
    pub fn status(&self, job_id: u64) -> Result<JobStatus, ServerError> {
        self.bus
            .call_service::<u64, Result<JobStatus, ServerError>>(STATUS_SERVICE, job_id)
            .map_err(|error| ServerError::Unavailable { detail: error.to_string() })?
    }

    /// The finished campaign of `job_id`, or `None` while it is still
    /// executing.
    ///
    /// # Errors
    ///
    /// Propagates [`status`](Self::status) errors.
    pub fn result(&self, job_id: u64) -> Result<Option<Arc<EnvironmentCampaign>>, ServerError> {
        Ok(match self.status(job_id)? {
            JobStatus::Complete(result) => Some(result),
            JobStatus::Pending { .. } => None,
        })
    }

    /// Subscribes to a job's incremental [`CampaignProgress`] stream with
    /// the default queue capacity.
    pub fn subscribe_progress(&self, job_id: u64) -> Subscriber<CampaignProgress> {
        self.bus.subscribe(&progress_topic(job_id))
    }

    /// The bus this client talks over.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_sim::env::EnvironmentKind;

    #[test]
    fn calls_without_a_server_are_typed_unavailable_errors() {
        let client = CampaignClient::new(&Bus::new());
        let request = CampaignRequest::quick(EnvironmentKind::Farm, 3);
        assert!(matches!(client.submit(&request), Err(ServerError::Unavailable { .. })));
        assert!(matches!(client.status(7), Err(ServerError::Unavailable { .. })));
        assert!(matches!(client.result(7), Err(ServerError::Unavailable { .. })));
    }
}
