//! Campaign-as-a-service: a sharded, checkpointing campaign server over
//! the in-repo middleware.
//!
//! [`CampaignServer`] promotes [`run_campaign`](crate::exec::run_campaign)
//! from a library call into a long-running service node: clients submit
//! [`CampaignRequest`]s over a bus service, the server shards each
//! campaign across its persistent worker pool in lockstep-batch *chunks*,
//! streams incremental [`CampaignProgress`] aggregates on a per-job topic,
//! and persists a versioned, digest-checked [`CampaignCheckpoint`] after
//! every stride.  A server killed at any point — between strides, or
//! mid-write thanks to atomic checkpoint renames — resumes from the last
//! checkpoint and produces a final campaign **byte-identical** to an
//! uninterrupted serve and to the library call.
//!
//! The determinism contract, wire protocol and failure taxonomy are
//! documented in `docs/SERVING.md`; `tests/server_faults.rs` and
//! `tests/server_determinism.rs` enforce them.
//!
//! # Examples
//!
//! ```no_run
//! use std::time::Duration;
//! use mavfi::exec::CampaignExecutor;
//! use mavfi::serve::{CampaignClient, CampaignRequest, CampaignServer};
//! use mavfi_middleware::{Bus, Executor};
//! use mavfi_sim::env::EnvironmentKind;
//!
//! let bus = Bus::new();
//! let server = CampaignServer::new(CampaignExecutor::new(4), "/tmp/campaigns").unwrap();
//! server.attach(&bus);
//! let client = CampaignClient::new(&bus);
//! let ticket = client.submit(&CampaignRequest::quick(EnvironmentKind::Farm, 7)).unwrap();
//! let progress = client.subscribe_progress(ticket.job_id);
//!
//! let mut executor = Executor::new(bus);
//! executor.add_node(Box::new(server));
//! while executor.run_for(Duration::from_millis(100)).is_ok() {
//!     if let Some(update) = progress.drain().last() {
//!         println!("{}/{} chunks", update.chunks_done, update.chunks_total);
//!         if update.complete {
//!             break;
//!         }
//!     }
//! }
//! let campaign = client.result(ticket.job_id).unwrap().expect("complete");
//! println!("golden success rate {}", campaign.golden.summary.success_rate);
//! ```

pub mod checkpoint;
pub mod client;
pub mod protocol;
pub mod server;

pub use checkpoint::{request_job_id, CampaignCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use client::CampaignClient;
pub use protocol::{
    progress_topic, CampaignProgress, CampaignRequest, JobStatus, JobTicket, ServerError,
    STATUS_SERVICE, SUBMIT_SERVICE,
};
pub use server::{clear_checkpoints, CampaignServer, CHECKPOINT_EXTENSION};
