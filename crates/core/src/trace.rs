//! Mission trace schemas: what the closed loop records per tick and how
//! each topic's payload is encoded.
//!
//! The middleware's [`TraceWriter`]/[`TraceReader`]
//! (`mavfi_middleware::trace`) own framing, stamps and digests; this module
//! owns the *content* — the typed per-topic payload schemas of a MAVFI
//! mission — and the [`MissionTrace`] container tying a recorded stream to
//! its [`TraceMeta`].  See `docs/REPLAY.md` for the format and the
//! determinism contract.
//!
//! Payloads lean on two encodings chosen for bit-exactness *and* size:
//!
//! - every `f64` travels as its IEEE bit pattern XORed against the previous
//!   value of the same logical column and varint-packed — consecutive
//!   closed-loop samples share high bits, so most stamps shrink to a few
//!   bytes while non-finite values (post-fault `NaN`/`inf`) survive exactly;
//! - depth frames travel as `(ray index, hit parameter)` pairs
//!   ([`RayHits`]), ~10 bytes per hit instead of three coordinates, with
//!   [`DepthCamera::resolve_rays`] reconstructing the identical point cloud
//!   on replay.

use std::path::Path;

use mavfi_detect::detector_node::DetectorStats;
use mavfi_fault::bitflip::BitField;
use mavfi_fault::injector::{FaultRecord, FaultSpec};
use mavfi_fault::model::CorruptionDetail;
use mavfi_middleware::trace::{
    compress_container, decompress_container, read_summary, write_varint, ByteReader, TopicDecl,
    TraceError, TraceReader, TraceSummary, TraceWriter,
};
use mavfi_ppc::pipeline::PpcTick;
use mavfi_ppc::states::{Stage, StateField, Trajectory};
use mavfi_sim::env::EnvironmentKind;
use mavfi_sim::geometry::Vec3;
use mavfi_sim::sensors::{DepthCamera, RayHits};
use mavfi_sim::vehicle::QuadrotorState;
use mavfi_sim::world::MissionStatus;
use serde::{Deserialize, Serialize};

use crate::config::{MissionSpec, Protection, TrainingSpec};
use crate::error::MavfiError;
use crate::qof::QofMetrics;

/// The topics a mission trace carries.
///
/// `VehicleState` and `DepthRays` are the closed loop's *inputs* (what the
/// sim fed the pipeline); the rest are *outputs* whose bit-identity replay
/// asserts.  `MissionEnd` is informational (sim-side QoF totals) and is
/// excluded from the replay comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceTopic {
    /// Input: the vehicle state the pipeline ticked on.
    VehicleState,
    /// Input: the depth capture in `(ray, t)` hit-parameter form.
    DepthRays,
    /// Output: the flight command the pipeline produced.
    Command,
    /// Output: the monitored inter-kernel states (raw, fault corruption
    /// included).
    Monitored,
    /// Output: per-tick flags — replanned, mission-complete, recomputed
    /// stages.
    TickFlags,
    /// Output: the planned trajectory, emitted on revision change.
    PlannedPath,
    /// Output: detector counter deltas, emitted on change.
    Detector,
    /// Output: the fault record, emitted once when the injection fires.
    Fault,
    /// Informational: final mission status and QoF totals from the sim.
    MissionEnd,
}

impl TraceTopic {
    /// Every topic, in per-tick emission order.
    pub const ALL: [Self; 9] = [
        Self::VehicleState,
        Self::DepthRays,
        Self::Command,
        Self::Monitored,
        Self::TickFlags,
        Self::PlannedPath,
        Self::Detector,
        Self::Fault,
        Self::MissionEnd,
    ];

    /// The stream topic id.
    pub fn id(self) -> u8 {
        match self {
            Self::VehicleState => 1,
            Self::DepthRays => 2,
            Self::Command => 3,
            Self::Monitored => 4,
            Self::TickFlags => 5,
            Self::PlannedPath => 6,
            Self::Detector => 7,
            Self::Fault => 8,
            Self::MissionEnd => 9,
        }
    }

    /// The topic carrying this id, if any.
    pub fn from_id(id: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|topic| topic.id() == id)
    }

    /// Stable topic name (used in the stream header and divergence reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::VehicleState => "vehicle_state",
            Self::DepthRays => "depth_rays",
            Self::Command => "command",
            Self::Monitored => "monitored",
            Self::TickFlags => "tick_flags",
            Self::PlannedPath => "planned_path",
            Self::Detector => "detector",
            Self::Fault => "fault",
            Self::MissionEnd => "mission_end",
        }
    }

    /// `true` for the pipeline-output topics replay compares bit-for-bit.
    pub fn is_output(self) -> bool {
        matches!(
            self,
            Self::Command
                | Self::Monitored
                | Self::TickFlags
                | Self::PlannedPath
                | Self::Detector
                | Self::Fault
        )
    }

    /// The topic table declared in every mission trace header.
    pub(crate) fn declarations() -> Vec<TopicDecl> {
        Self::ALL.into_iter().map(|topic| TopicDecl::new(topic.id(), topic.name(), 1)).collect()
    }
}

/// Where the detectors supervising a recorded mission came from, so a
/// replay can retrain bit-identical ones via the global detector cache
/// without the trace having to embed the trained weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorProvenance {
    /// Environment kind the training missions flew in.
    pub environment: EnvironmentKind,
    /// The training configuration.
    pub training: TrainingSpec,
}

/// Everything a replay needs to rebuild the recorded closed loop: the
/// mission, the protection scheme, the fault, the camera intrinsics and the
/// detector provenance.  Serialized as JSON into the trace header's meta
/// blob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// The mission specification the runner flew.
    pub spec: MissionSpec,
    /// The active protection scheme.
    pub protection: Protection,
    /// The injected fault, if any.
    pub fault: Option<FaultSpec>,
    /// The depth-camera intrinsics used for capture.
    pub camera: DepthCamera,
    /// How to retrain the supervising detectors, when `protection` needs
    /// them and the trace should be self-contained.
    pub detectors: Option<DetectorProvenance>,
}

/// One XOR-prev-bits varint column: the unit of `f64` compression every
/// payload schema is built from.
#[derive(Debug, Clone, Copy, Default)]
struct XorColumn {
    prev: u64,
}

impl XorColumn {
    fn encode(&mut self, out: &mut Vec<u8>, value: f64) {
        let bits = value.to_bits();
        write_varint(out, bits ^ self.prev);
        self.prev = bits;
    }

    fn decode(&mut self, reader: &mut ByteReader<'_>) -> Result<f64, TraceError> {
        let bits = reader.read_varint()? ^ self.prev;
        self.prev = bits;
        Ok(f64::from_bits(bits))
    }
}

/// Column state for the input topics (vehicle state, depth rays).
#[derive(Debug, Clone, Default)]
pub(crate) struct InputCodec {
    state: [XorColumn; 7],
    ray_t: XorColumn,
}

impl InputCodec {
    pub(crate) fn encode_state(&mut self, out: &mut Vec<u8>, state: &QuadrotorState) {
        out.clear();
        let values = [
            state.position.x,
            state.position.y,
            state.position.z,
            state.velocity.x,
            state.velocity.y,
            state.velocity.z,
            state.yaw,
        ];
        for (column, value) in self.state.iter_mut().zip(values) {
            column.encode(out, value);
        }
    }

    pub(crate) fn decode_state(&mut self, payload: &[u8]) -> Result<QuadrotorState, TraceError> {
        let mut reader = ByteReader::new(payload);
        let mut values = [0.0f64; 7];
        for (column, value) in self.state.iter_mut().zip(values.iter_mut()) {
            *value = column.decode(&mut reader)?;
        }
        expect_drained(&reader, TraceTopic::VehicleState)?;
        Ok(QuadrotorState {
            position: Vec3::new(values[0], values[1], values[2]),
            velocity: Vec3::new(values[3], values[4], values[5]),
            yaw: values[6],
        })
    }

    pub(crate) fn encode_rays(&mut self, out: &mut Vec<u8>, rays: &RayHits) {
        out.clear();
        write_varint(out, rays.rays_cast as u64);
        write_varint(out, rays.hits.len() as u64);
        let mut prev_ray = 0u64;
        for &(ray, t) in &rays.hits {
            // Rays are scanned in order, so indices strictly increase
            // within a frame and the delta stays small.
            write_varint(out, u64::from(ray) - prev_ray);
            prev_ray = u64::from(ray);
            self.ray_t.encode(out, t);
        }
    }

    pub(crate) fn decode_rays(
        &mut self,
        payload: &[u8],
        rays: &mut RayHits,
    ) -> Result<(), TraceError> {
        let mut reader = ByteReader::new(payload);
        rays.clear();
        rays.rays_cast = reader.read_varint()? as usize;
        let hits = reader.read_varint()? as usize;
        let mut prev_ray = 0u64;
        for _ in 0..hits {
            let ray = prev_ray + reader.read_varint()?;
            prev_ray = ray;
            let ray = u32::try_from(ray)
                .map_err(|_| TraceError::Malformed { reason: "ray index exceeds u32".into() })?;
            rays.hits.push((ray, self.ray_t.decode(&mut reader)?));
        }
        expect_drained(&reader, TraceTopic::DepthRays)
    }
}

fn expect_drained(reader: &ByteReader<'_>, topic: TraceTopic) -> Result<(), TraceError> {
    if reader.is_empty() {
        Ok(())
    } else {
        Err(TraceError::Malformed {
            reason: format!("{} payload has trailing bytes", topic.name()),
        })
    }
}

/// Snapshot of the monotonic detector counters a [`OutputTracker`] diffs
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DetectorCounters {
    alarms: [u64; Stage::COUNT],
    recomputations: [u64; Stage::COUNT],
    abandonments: u64,
}

impl DetectorCounters {
    fn of(stats: &DetectorStats) -> Self {
        let mut counters = Self { abandonments: stats.abandonments, ..Self::default() };
        for stage in Stage::ALL {
            counters.alarms[stage.index()] = stats.alarms_of(stage);
            counters.recomputations[stage.index()] = stats.recomputations_of(stage);
        }
        counters
    }
}

/// Emits the per-tick *output* records for one pipeline tick — the single
/// source of truth shared by the recording path ([`TraceCapture`]) and the
/// replay harness, so both sides produce byte-identical records under
/// identical pipeline behaviour.
#[derive(Debug, Clone)]
pub(crate) struct OutputTracker {
    command: [XorColumn; 4],
    monitored: [XorColumn; 13],
    path: [XorColumn; 7],
    /// `u64::MAX` sentinel: the first tick always emits the initial path.
    last_revision: u64,
    detector: DetectorCounters,
    fault_written: bool,
    scratch: Vec<u8>,
}

impl Default for OutputTracker {
    fn default() -> Self {
        Self {
            command: Default::default(),
            monitored: Default::default(),
            path: Default::default(),
            last_revision: u64::MAX,
            detector: DetectorCounters::default(),
            fault_written: false,
            scratch: Vec::new(),
        }
    }
}

impl OutputTracker {
    /// Emits this tick's output records, in the fixed per-tick order
    /// `Command`, `Monitored`, `TickFlags`, then conditionally
    /// `PlannedPath` (trajectory revision changed), `Detector` (any counter
    /// changed) and `Fault` (first tick the injector reports a record).
    pub(crate) fn emit(
        &mut self,
        tick: &PpcTick,
        trajectory: &Trajectory,
        revision: u64,
        detector: Option<&DetectorStats>,
        fault: Option<&FaultRecord>,
        mut sink: impl FnMut(TraceTopic, &[u8]),
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);

        scratch.clear();
        let command_values = [
            tick.command.velocity.x,
            tick.command.velocity.y,
            tick.command.velocity.z,
            tick.command.yaw_rate,
        ];
        for (column, value) in self.command.iter_mut().zip(command_values) {
            column.encode(&mut scratch, value);
        }
        sink(TraceTopic::Command, &scratch);

        scratch.clear();
        // Raw field reads: `MonitoredStates::as_array` squashes non-finite
        // values, which would lose exactly the post-fault states replay
        // must reproduce.
        for (column, field) in self.monitored.iter_mut().zip(StateField::ALL) {
            column.encode(&mut scratch, tick.monitored.field(field));
        }
        scratch.push(u8::from(tick.monitored.collision.obstacle_ahead));
        sink(TraceTopic::Monitored, &scratch);

        scratch.clear();
        let flags = u8::from(tick.replanned) | (u8::from(tick.mission_complete) << 1);
        scratch.push(flags);
        let stages = tick.recomputed_stages.as_slice();
        scratch.push(stages.len() as u8);
        for stage in stages {
            scratch.push(stage.index() as u8);
        }
        sink(TraceTopic::TickFlags, &scratch);

        if revision != self.last_revision {
            self.last_revision = revision;
            scratch.clear();
            write_varint(&mut scratch, revision);
            write_varint(&mut scratch, trajectory.waypoints.len() as u64);
            for waypoint in &trajectory.waypoints {
                let values = [
                    waypoint.position.x,
                    waypoint.position.y,
                    waypoint.position.z,
                    waypoint.yaw,
                    waypoint.velocity.x,
                    waypoint.velocity.y,
                    waypoint.velocity.z,
                ];
                for (column, value) in self.path.iter_mut().zip(values) {
                    column.encode(&mut scratch, value);
                }
            }
            sink(TraceTopic::PlannedPath, &scratch);
        }

        if let Some(stats) = detector {
            let counters = DetectorCounters::of(stats);
            if counters != self.detector {
                scratch.clear();
                for stage in Stage::ALL {
                    write_varint(
                        &mut scratch,
                        counters.alarms[stage.index()] - self.detector.alarms[stage.index()],
                    );
                }
                for stage in Stage::ALL {
                    write_varint(
                        &mut scratch,
                        counters.recomputations[stage.index()]
                            - self.detector.recomputations[stage.index()],
                    );
                }
                write_varint(&mut scratch, counters.abandonments - self.detector.abandonments);
                self.detector = counters;
                sink(TraceTopic::Detector, &scratch);
            }
        }

        if let Some(record) = fault {
            if !self.fault_written {
                self.fault_written = true;
                scratch.clear();
                encode_fault(&mut scratch, record);
                sink(TraceTopic::Fault, &scratch);
            }
        }

        self.scratch = scratch;
    }
}

fn encode_fault(out: &mut Vec<u8>, record: &FaultRecord) {
    write_varint(out, record.tick);
    out.push(record.field.map_or(0xFF, |field| field.index() as u8));
    write_varint(out, record.target.len() as u64);
    out.extend_from_slice(record.target.as_bytes());
    out.extend_from_slice(&record.detail.original.to_bits().to_le_bytes());
    out.extend_from_slice(&record.detail.corrupted.to_bits().to_le_bytes());
    out.push(record.detail.bit.unwrap_or(0xFF));
    out.push(match record.detail.field {
        None => 0xFF,
        Some(BitField::Sign) => 0,
        Some(BitField::Exponent) => 1,
        Some(BitField::Mantissa) => 2,
    });
}

/// Decodes a [`TraceTopic::Fault`] payload back into the fault record —
/// useful when triaging a divergence around the injection tick.
pub fn decode_fault(payload: &[u8]) -> Result<FaultRecord, TraceError> {
    let mut reader = ByteReader::new(payload);
    let tick = reader.read_varint()?;
    let field = match reader.read_u8()? {
        0xFF => None,
        index => Some(
            *StateField::ALL
                .get(index as usize)
                .ok_or_else(|| TraceError::Malformed { reason: "bad state-field index".into() })?,
        ),
    };
    let target_len = reader.read_varint()? as usize;
    let target = std::str::from_utf8(reader.read_exact(target_len)?)
        .map_err(|_| TraceError::Malformed { reason: "fault target is not UTF-8".into() })?
        .to_owned();
    let original = f64::from_bits(reader.read_u64_le()?);
    let corrupted = f64::from_bits(reader.read_u64_le()?);
    let bit = match reader.read_u8()? {
        0xFF => None,
        value => Some(value),
    };
    let bit_field = match reader.read_u8()? {
        0xFF => None,
        0 => Some(BitField::Sign),
        1 => Some(BitField::Exponent),
        2 => Some(BitField::Mantissa),
        _ => return Err(TraceError::Malformed { reason: "bad bit-field tag".into() }),
    };
    expect_drained(&reader, TraceTopic::Fault)?;
    Ok(FaultRecord {
        tick,
        target,
        field,
        detail: CorruptionDetail { original, corrupted, bit, field: bit_field },
    })
}

pub(crate) fn encode_mission_end(out: &mut Vec<u8>, qof: &QofMetrics, ticks: u64) {
    out.push(match qof.status {
        MissionStatus::InProgress => 0,
        MissionStatus::Succeeded => 1,
        MissionStatus::Collided => 2,
        MissionStatus::TimedOut => 3,
    });
    out.extend_from_slice(&qof.flight_time_s.to_bits().to_le_bytes());
    out.extend_from_slice(&qof.energy_j.to_bits().to_le_bytes());
    out.extend_from_slice(&qof.distance_m.to_bits().to_le_bytes());
    write_varint(out, ticks);
}

/// Decodes a [`TraceTopic::MissionEnd`] payload into `(qof, ticks)`.
pub(crate) fn decode_mission_end(payload: &[u8]) -> Result<(QofMetrics, u64), TraceError> {
    let mut reader = ByteReader::new(payload);
    let status = match reader.read_u8()? {
        0 => MissionStatus::InProgress,
        1 => MissionStatus::Succeeded,
        2 => MissionStatus::Collided,
        3 => MissionStatus::TimedOut,
        other => {
            return Err(TraceError::Malformed { reason: format!("bad mission status {other}") })
        }
    };
    let flight_time_s = f64::from_bits(reader.read_u64_le()?);
    let energy_j = f64::from_bits(reader.read_u64_le()?);
    let distance_m = f64::from_bits(reader.read_u64_le()?);
    let ticks = reader.read_varint()?;
    expect_drained(&reader, TraceTopic::MissionEnd)?;
    Ok((QofMetrics { status, flight_time_s, energy_j, distance_m }, ticks))
}

/// The recording side: owned by [`MissionRunner::run_recorded`]
/// (`crate::runner`), fed once per tick, finished into a [`MissionTrace`].
///
/// [`MissionRunner::run_recorded`]: crate::runner::MissionRunner::run_recorded
#[derive(Debug)]
pub(crate) struct TraceCapture {
    writer: TraceWriter,
    inputs: InputCodec,
    outputs: OutputTracker,
    last_tick: u64,
    last_sim_time: f64,
}

impl TraceCapture {
    pub(crate) fn new(meta: &TraceMeta) -> Result<Self, MavfiError> {
        let meta_json = serde_json::to_string(meta).map_err(MavfiError::Serialization)?;
        Ok(Self {
            writer: TraceWriter::new(meta_json.as_bytes(), &TraceTopic::declarations()),
            inputs: InputCodec::default(),
            outputs: OutputTracker::default(),
            last_tick: 0,
            last_sim_time: 0.0,
        })
    }

    /// Records the tick's inputs (stamped at tick start, before the world
    /// steps).
    pub(crate) fn record_inputs(
        &mut self,
        tick: u64,
        sim_time: f64,
        state: &QuadrotorState,
        rays: &RayHits,
    ) {
        self.last_tick = tick;
        self.last_sim_time = sim_time;
        let mut payload = Vec::new();
        self.inputs.encode_state(&mut payload, state);
        self.writer.record(TraceTopic::VehicleState.id(), tick, sim_time, &payload);
        self.inputs.encode_rays(&mut payload, rays);
        self.writer.record(TraceTopic::DepthRays.id(), tick, sim_time, &payload);
    }

    /// Records the tick's pipeline outputs (same tick-start stamp as the
    /// inputs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_outputs(
        &mut self,
        tick: u64,
        sim_time: f64,
        ppc_tick: &PpcTick,
        trajectory: &Trajectory,
        revision: u64,
        detector: Option<&DetectorStats>,
        fault: Option<&FaultRecord>,
    ) {
        let writer = &mut self.writer;
        self.outputs.emit(ppc_tick, trajectory, revision, detector, fault, |topic, payload| {
            writer.record(topic.id(), tick, sim_time, payload);
        });
    }

    /// Appends the mission-end record and returns the finished trace.
    pub(crate) fn finish(mut self, qof: &QofMetrics, ticks: u64) -> MissionTrace {
        let mut payload = Vec::new();
        encode_mission_end(&mut payload, qof, ticks);
        self.writer.record(
            TraceTopic::MissionEnd.id(),
            self.last_tick,
            self.last_sim_time,
            &payload,
        );
        MissionTrace { stream: self.writer.finish() }
    }
}

/// A recorded mission: the finished binary trace stream plus accessors for
/// its metadata, digest and on-disk (LZSS container) form.
///
/// # Examples
///
/// ```no_run
/// use mavfi::prelude::*;
/// use mavfi::replay::ReplayHarness;
///
/// let spec = MissionSpec::new(EnvironmentKind::Sparse, 3);
/// let (outcome, trace) = MissionRunner::new(spec).run_golden_recorded().unwrap();
/// let report = ReplayHarness::new(&trace).replay().unwrap();
/// assert!(report.is_match());
/// assert_eq!(report.ticks, outcome.pipeline.ticks);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissionTrace {
    stream: Vec<u8>,
}

impl MissionTrace {
    /// The raw (uncompressed) trace stream bytes.
    pub fn stream(&self) -> &[u8] {
        &self.stream
    }

    /// Parses the trace's [`TraceMeta`] from the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Trace`] for a damaged header and
    /// [`MavfiError::Serialization`] for an unreadable meta blob.
    pub fn meta(&self) -> Result<TraceMeta, MavfiError> {
        let reader = TraceReader::new(&self.stream)?;
        let meta = std::str::from_utf8(reader.meta()).map_err(|_| {
            MavfiError::Trace(TraceError::Malformed { reason: "meta blob is not UTF-8".into() })
        })?;
        serde_json::from_str(meta).map_err(MavfiError::Serialization)
    }

    /// Reads the whole stream, verifying every record and digest, and
    /// returns the footer summary.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Trace`] when the stream fails verification.
    pub fn verify(&self) -> Result<TraceSummary, MavfiError> {
        Ok(read_summary(&self.stream)?)
    }

    /// The recorded stream digest (from the verified footer).
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Trace`] when the stream fails verification.
    pub fn stream_digest(&self) -> Result<u64, MavfiError> {
        Ok(self.verify()?.stream_digest)
    }

    /// Serializes to the on-disk container form (`.mvt`): magic, codec
    /// byte, raw length, LZSS-compressed stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        compress_container(&self.stream)
    }

    /// Parses a container produced by [`MissionTrace::to_bytes`], verifying
    /// the full stream (header, records, digests).
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Trace`] for foreign, truncated or corrupted
    /// data — never panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, MavfiError> {
        let trace = Self { stream: decompress_container(data)? };
        trace.verify()?;
        Ok(trace)
    }

    /// Writes the container form to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MavfiError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Loads and verifies a container written by [`MissionTrace::save`].
    ///
    /// # Errors
    ///
    /// Returns [`MavfiError::Io`] on filesystem errors and
    /// [`MavfiError::Trace`] for damaged or foreign files.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, MavfiError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_codec_round_trips_states_and_rays() {
        let mut encoder = InputCodec::default();
        let mut decoder = InputCodec::default();
        let mut payload = Vec::new();
        let states = [
            QuadrotorState {
                position: Vec3::new(1.0, -2.5, 3.25),
                velocity: Vec3::new(0.1, 0.2, -0.3),
                yaw: 0.7,
            },
            QuadrotorState {
                position: Vec3::new(1.01, -2.49, 3.26),
                velocity: Vec3::new(f64::NAN, f64::INFINITY, -0.31),
                yaw: 0.71,
            },
        ];
        for state in states {
            encoder.encode_state(&mut payload, &state);
            let decoded = decoder.decode_state(&payload).unwrap();
            assert_eq!(decoded.position.x.to_bits(), state.position.x.to_bits());
            assert_eq!(decoded.velocity.x.to_bits(), state.velocity.x.to_bits());
            assert_eq!(decoded.velocity.y.to_bits(), state.velocity.y.to_bits());
            assert_eq!(decoded.yaw.to_bits(), state.yaw.to_bits());
        }

        let rays = RayHits { rays_cast: 256, hits: vec![(3, 4.5), (17, 4.51), (255, 19.999)] };
        encoder.encode_rays(&mut payload, &rays);
        let mut decoded = RayHits::default();
        decoder.decode_rays(&payload, &mut decoded).unwrap();
        assert_eq!(decoded.rays_cast, rays.rays_cast);
        assert_eq!(decoded.hits.len(), rays.hits.len());
        for ((ray_a, t_a), (ray_b, t_b)) in decoded.hits.iter().zip(&rays.hits) {
            assert_eq!(ray_a, ray_b);
            assert_eq!(t_a.to_bits(), t_b.to_bits());
        }
    }

    #[test]
    fn close_samples_compress_well() {
        let mut encoder = InputCodec::default();
        let mut payload = Vec::new();
        let base = QuadrotorState {
            position: Vec3::new(10.0, 5.0, 2.0),
            velocity: Vec3::new(1.0, 0.0, 0.0),
            yaw: 0.0,
        };
        encoder.encode_state(&mut payload, &base);
        // An identical consecutive sample is one byte per column.
        encoder.encode_state(&mut payload, &base);
        assert_eq!(payload.len(), 7);
    }

    #[test]
    fn fault_and_end_records_round_trip() {
        let record = FaultRecord {
            tick: 42,
            target: "planning/waypoint_x".to_owned(),
            field: Some(StateField::WaypointX),
            detail: CorruptionDetail {
                original: 1.5,
                corrupted: f64::NAN,
                bit: Some(62),
                field: Some(BitField::Exponent),
            },
        };
        let mut payload = Vec::new();
        encode_fault(&mut payload, &record);
        let decoded = decode_fault(&payload).unwrap();
        assert_eq!(decoded.tick, record.tick);
        assert_eq!(decoded.target, record.target);
        assert_eq!(decoded.field, record.field);
        assert_eq!(decoded.detail.corrupted.to_bits(), record.detail.corrupted.to_bits());
        assert_eq!(decoded.detail.bit, record.detail.bit);
        assert_eq!(decoded.detail.field, record.detail.field);

        let qof = QofMetrics {
            status: MissionStatus::Succeeded,
            flight_time_s: 31.2,
            energy_j: 880.5,
            distance_m: 45.0,
        };
        let mut payload = Vec::new();
        encode_mission_end(&mut payload, &qof, 312);
        let (decoded_qof, ticks) = decode_mission_end(&payload).unwrap();
        assert_eq!(decoded_qof, qof);
        assert_eq!(ticks, 312);
    }

    #[test]
    fn topic_ids_are_unique_and_reversible() {
        for topic in TraceTopic::ALL {
            assert_eq!(TraceTopic::from_id(topic.id()), Some(topic));
        }
        let mut ids: Vec<u8> = TraceTopic::ALL.iter().map(|t| t.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TraceTopic::ALL.len());
    }
}
