//! A small dense matrix type sufficient for fully connected networks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mavfi_nn::tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from explicit row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(rows.iter().all(|row| row.len() == cols), "rows must have equal length");
        Self { rows: rows.len(), cols, data: rows.concat() }
    }

    /// Creates a matrix with Xavier/Glorot-uniform random entries, suitable
    /// for initialising dense layers deterministically from a seed.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &mut self.data[row * self.cols + col]
    }

    /// Raw data slice in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix-vector product `self * x` written into a caller-provided
    /// buffer, so hot loops can reuse one allocation across calls.  The
    /// buffer is cleared and refilled; its capacity is reused.  Produces
    /// bit-identical results to [`Matrix::matvec`] (same per-row summation
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        out.clear();
        for row in 0..self.rows {
            let offset = row * self.cols;
            out.push(
                self.data[offset..offset + self.cols].iter().zip(x).map(|(w, xi)| w * xi).sum(),
            );
        }
    }

    /// Matrix-matrix product `self * x` over a batch of column vectors,
    /// written into a caller-provided buffer.
    ///
    /// `x` holds `batch` column vectors in feature-major layout: element
    /// `x[k * batch + j]` is feature `k` of column `j`.  The output uses the
    /// same layout: `out[row * batch + j]` is output row `row` of column `j`.
    /// The buffer is cleared and refilled; its capacity is reused.
    ///
    /// Every output column is bit-identical to [`Matrix::matvec_into`] on the
    /// corresponding input column: the accumulation over `k` starts at `0.0`
    /// and adds `w[row][k] * x[k][j]` in ascending `k` order, exactly the
    /// per-row summation `matvec_into` performs.  Batched callers can
    /// therefore substitute one `matmul_into` for N matvecs without
    /// perturbing results.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `x.len() != self.cols() * batch`.
    pub fn matmul_into(&self, x: &[f64], batch: usize, out: &mut Vec<f64>) {
        assert!(batch > 0, "batch must be non-empty");
        assert_eq!(x.len(), self.cols * batch, "dimension mismatch in matmul");
        out.clear();
        out.resize(self.rows * batch, 0.0);
        for row in 0..self.rows {
            let offset = row * self.cols;
            let out_row = &mut out[row * batch..(row + 1) * batch];
            for (k, &w) in self.data[offset..offset + self.cols].iter().enumerate() {
                let x_row = &x[k * batch..(k + 1) * batch];
                for (acc, &xi) in out_row.iter_mut().zip(x_row) {
                    *acc += w * xi;
                }
            }
        }
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in transposed matvec");
        let mut out = vec![0.0; self.cols];
        for (row, xi) in x.iter().enumerate() {
            let offset = row * self.cols;
            for (col, out_value) in out.iter_mut().enumerate() {
                *out_value += self.data[offset + col] * xi;
            }
        }
        out
    }

    /// Adds `scale * outer(a, b)` into this matrix (used for gradient
    /// accumulation: `dW += delta ⊗ input`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer product row dimension mismatch");
        assert_eq!(b.len(), self.cols, "outer product column dimension mismatch");
        for (row, ai) in a.iter().enumerate() {
            let offset = row * self.cols;
            for (col, bj) in b.iter().enumerate() {
                self.data[offset + col] += scale * ai * bj;
            }
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f64) {
        for value in &mut self.data {
            *value *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn transposed_matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.matvec_transposed(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 2), -1.0);
        m.scale(2.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(4, 5, 11);
        let b = Matrix::xavier(4, 5, 11);
        assert_eq!(a, b);
        let limit = (6.0 / 9.0_f64).sqrt();
        assert!(a.as_slice().iter().all(|w| w.abs() <= limit));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_dimension_mismatch_panics() {
        Matrix::zeros(2, 2).matvec(&[1.0]);
    }

    #[test]
    fn matmul_columns_are_bit_identical_to_matvec() {
        let m = Matrix::xavier(7, 5, 42);
        let batch = 4;
        // Feature-major batch with awkward, rounding-sensitive values.
        let columns: Vec<Vec<f64>> = (0..batch)
            .map(|j| (0..5).map(|k| 0.1 + 1e13 * (j as f64) - 0.3 * (k as f64)).collect())
            .collect();
        let mut x = vec![0.0; 5 * batch];
        for (j, col) in columns.iter().enumerate() {
            for (k, &v) in col.iter().enumerate() {
                x[k * batch + j] = v;
            }
        }
        let mut out = Vec::new();
        m.matmul_into(&x, batch, &mut out);
        for (j, col) in columns.iter().enumerate() {
            let single = m.matvec(col);
            for (row, &expect) in single.iter().enumerate() {
                assert_eq!(out[row * batch + j].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn matmul_with_batch_one_matches_matvec_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut out = Vec::new();
        m.matmul_into(&[1.0, 0.0, -1.0], 1, &mut out);
        assert_eq!(out, m.matvec(&[1.0, 0.0, -1.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        Matrix::zeros(2, 2).matmul_into(&[1.0, 2.0, 3.0], 2, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
