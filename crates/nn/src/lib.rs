//! `mavfi-nn` is a deliberately small dense-neural-network library: just
//! enough machinery (matrices, dense layers, MSE, Adam) to train and run the
//! 13-6-3-13 autoencoder that powers MAVFI's autoencoder-based anomaly
//! detection, without any external ML framework.
//!
//! # Examples
//!
//! ```
//! use mavfi_nn::prelude::*;
//!
//! // Train a tiny autoencoder on correlated 4-dimensional data.
//! let samples: Vec<Vec<f64>> = (0..100)
//!     .map(|i| {
//!         let t = i as f64 / 100.0;
//!         vec![t, 2.0 * t, -t, 0.5 * t]
//!     })
//!     .collect();
//! let mut model = Autoencoder::new(4, &[2], 7);
//! let report = train_autoencoder(&mut model, &samples, &TrainConfig::default());
//! assert!(report.final_loss() < report.epoch_losses[0]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod autoencoder;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use activation::Activation;
pub use autoencoder::Autoencoder;
pub use layer::{Dense, LayerCache, LayerGradients};
pub use network::{Gradients, Mlp, MlpBatchScratch, MlpBuilder, MlpScratch};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use serialize::{from_json, load_json, save_json, to_json, PersistError};
pub use tensor::Matrix;
pub use train::{train_autoencoder, TrainConfig, TrainReport};

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::autoencoder::Autoencoder;
    pub use crate::network::Mlp;
    pub use crate::optimizer::{Adam, Optimizer, Sgd};
    pub use crate::train::{train_autoencoder, TrainConfig, TrainReport};
}
