//! Gradient-descent optimizers.

use serde::{Deserialize, Serialize};

use crate::network::{Gradients, Mlp};
use crate::tensor::Matrix;

/// An optimizer updates network parameters from gradients.
pub trait Optimizer {
    /// Applies one update step to `network` using `gradients`.
    fn step(&mut self, network: &mut Mlp, gradients: &Gradients);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f64) -> Self {
        Self { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut Mlp, gradients: &Gradients) {
        for (layer, grads) in network.layers_mut().iter_mut().zip(&gradients.layers) {
            for (w, g) in
                layer.weights_mut().as_mut_slice().iter_mut().zip(grads.weights.as_slice())
            {
                *w -= self.learning_rate * g;
            }
            for (b, g) in layer.biases_mut().iter_mut().zip(&grads.biases) {
                *b -= self.learning_rate * g;
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct AdamSlot {
    m_weights: Matrix,
    v_weights: Matrix,
    m_biases: Vec<f64>,
    v_biases: Vec<f64>,
}

/// The Adam optimizer (Kingma & Ba), used by the paper to train the
/// autoencoder's reconstruction error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay rate of the first moment.
    pub beta1: f64,
    /// Exponential decay rate of the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
    timestep: u64,
    slots: Vec<AdamSlot>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `epsilon = 1e-8`).
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            timestep: 0,
            slots: Vec::new(),
        }
    }

    fn ensure_slots(&mut self, network: &Mlp) {
        if self.slots.len() == network.layers().len() {
            return;
        }
        self.slots = network
            .layers()
            .iter()
            .map(|layer| AdamSlot {
                m_weights: Matrix::zeros(layer.output_dim(), layer.input_dim()),
                v_weights: Matrix::zeros(layer.output_dim(), layer.input_dim()),
                m_biases: vec![0.0; layer.output_dim()],
                v_biases: vec![0.0; layer.output_dim()],
            })
            .collect();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut Mlp, gradients: &Gradients) {
        self.ensure_slots(network);
        self.timestep += 1;
        let t = self.timestep as f64;
        let bias_correction1 = 1.0 - self.beta1.powf(t);
        let bias_correction2 = 1.0 - self.beta2.powf(t);

        for ((layer, grads), slot) in
            network.layers_mut().iter_mut().zip(&gradients.layers).zip(&mut self.slots)
        {
            let weights = layer.weights_mut().as_mut_slice();
            let grad_weights = grads.weights.as_slice();
            let m = slot.m_weights.as_mut_slice();
            let v = slot.v_weights.as_mut_slice();
            for i in 0..weights.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad_weights[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad_weights[i] * grad_weights[i];
                let m_hat = m[i] / bias_correction1;
                let v_hat = v[i] / bias_correction2;
                weights[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            let biases = layer.biases_mut();
            for (((bias, &g), m), v) in
                biases.iter_mut().zip(&grads.biases).zip(&mut slot.m_biases).zip(&mut slot.v_biases)
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bias_correction1;
                let v_hat = *v / bias_correction2;
                *bias -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn tiny_network(seed: u64) -> Mlp {
        Mlp::builder(2).layer(4, Activation::Tanh).layer(2, Activation::Identity).build(seed)
    }

    fn train<O: Optimizer>(mut network: Mlp, optimizer: &mut O, steps: usize) -> f64 {
        let samples =
            [([0.0, 0.0], [0.0, 0.0]), ([1.0, 0.0], [0.0, 1.0]), ([0.0, 1.0], [1.0, 0.0])];
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let mut total = 0.0;
            for (input, target) in &samples {
                let (loss, grads) = network.loss_and_gradients(input, target);
                optimizer.step(&mut network, &grads);
                total += loss;
            }
            last = total / samples.len() as f64;
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let network = tiny_network(1);
        let initial = {
            let n = network.clone();
            let (loss, _) = n.loss_and_gradients(&[1.0, 0.0], &[0.0, 1.0]);
            loss
        };
        let final_loss = train(network, &mut Sgd::new(0.1), 200);
        assert!(final_loss < initial, "SGD should reduce the loss ({final_loss} >= {initial})");
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_this_problem() {
        let sgd_loss = train(tiny_network(2), &mut Sgd::new(0.01), 100);
        let adam_loss = train(tiny_network(2), &mut Adam::new(0.01), 100);
        assert!(adam_loss < sgd_loss, "Adam ({adam_loss}) should beat small-step SGD ({sgd_loss})");
    }

    #[test]
    fn adam_reaches_low_loss() {
        let loss = train(tiny_network(3), &mut Adam::new(0.02), 500);
        assert!(loss < 1e-2, "Adam should fit the toy dataset, got {loss}");
    }
}
