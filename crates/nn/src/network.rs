//! Sequential multi-layer perceptrons built from dense layers.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layer::{Dense, LayerCache, LayerGradients};
use crate::loss::{mse, mse_gradient};

/// A sequential stack of [`Dense`] layers.
///
/// # Examples
///
/// ```
/// use mavfi_nn::activation::Activation;
/// use mavfi_nn::network::Mlp;
///
/// let mlp = Mlp::builder(4)
///     .layer(8, Activation::Relu)
///     .layer(2, Activation::Identity)
///     .build(42);
/// assert_eq!(mlp.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Gradients for every layer of an [`Mlp`], in layer order.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Per-layer parameter gradients.
    pub layers: Vec<LayerGradients>,
}

/// Builder collecting the layer sizes of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    layers: Vec<(usize, Activation)>,
}

/// Reusable forward-pass scratch: two ping-pong activation buffers sized to
/// the widest layer, so [`Mlp::forward_into`] performs no heap allocation
/// once the buffers have grown to capacity (after the first call).
///
/// One scratch serves any number of networks; buffers grow to the widest
/// layer seen.  Scratches hold no semantic state — a fresh one produces the
/// same results as a reused one.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    current: Vec<f64>,
    next: Vec<f64>,
}

impl MlpScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable scratch for [`Mlp::forward_batch_into`]: the batched counterpart
/// of [`MlpScratch`].  Buffers grow to `widest layer × batch` on first use
/// and hold no semantic state.
#[derive(Debug, Clone, Default)]
pub struct MlpBatchScratch {
    current: Vec<f64>,
    next: Vec<f64>,
}

impl MlpBatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MlpBuilder {
    /// Appends a dense layer with `output_dim` neurons.
    pub fn layer(mut self, output_dim: usize, activation: Activation) -> Self {
        self.layers.push((output_dim, activation));
        self
    }

    /// Builds the network, initialising weights deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build(self, seed: u64) -> Mlp {
        assert!(!self.layers.is_empty(), "an MLP needs at least one layer");
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut input_dim = self.input_dim;
        for (index, (output_dim, activation)) in self.layers.into_iter().enumerate() {
            layers.push(Dense::new(
                input_dim,
                output_dim,
                activation,
                seed.wrapping_add(index as u64),
            ));
            input_dim = output_dim;
        }
        Mlp { layers }
    }
}

impl Mlp {
    /// Starts building a network with the given input dimension.
    pub fn builder(input_dim: usize) -> MlpBuilder {
        MlpBuilder { input_dim, layers: Vec::new() }
    }

    /// The network's input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::input_dim)
    }

    /// The network's output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::output_dim)
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|layer| layer.input_dim() * layer.output_dim() + layer.output_dim())
            .sum()
    }

    /// Forward pass.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut current = input.to_vec();
        for layer in &self.layers {
            current = layer.forward(&current);
        }
        current
    }

    /// Forward pass through caller-provided scratch buffers: the
    /// allocation-free counterpart of [`Mlp::forward`], bit-identical in its
    /// results.  Returns the output activations as a slice into `scratch`,
    /// valid until the next use of the scratch.
    pub fn forward_into<'scratch>(
        &self,
        input: &[f64],
        scratch: &'scratch mut MlpScratch,
    ) -> &'scratch [f64] {
        let MlpScratch { current, next } = scratch;
        current.clear();
        current.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward_into(current, next);
            std::mem::swap(current, next);
        }
        current
    }

    /// Batched forward pass over `batch` feature-major columns: one
    /// matrix-matrix pass per layer instead of `batch` matvecs.  Column `j`
    /// of the result (elements `out[k * batch + j]`) is bit-identical to
    /// [`Mlp::forward_into`] on column `j` of the input.  Returns the output
    /// activations (feature-major, `output_dim × batch`) as a slice into
    /// `scratch`, valid until the next use of the scratch.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `input.len() != self.input_dim() * batch`.
    pub fn forward_batch_into<'scratch>(
        &self,
        input: &[f64],
        batch: usize,
        scratch: &'scratch mut MlpBatchScratch,
    ) -> &'scratch [f64] {
        assert_eq!(input.len(), self.input_dim() * batch, "batched input dimension mismatch");
        let MlpBatchScratch { current, next } = scratch;
        current.clear();
        current.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward_batch_into(current, batch, next);
            std::mem::swap(current, next);
        }
        current
    }

    fn forward_cached(&self, input: &[f64]) -> Vec<LayerCache> {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut current = input.to_vec();
        for layer in &self.layers {
            let cache = layer.forward_cached(&current);
            current = cache.output.clone();
            caches.push(cache);
        }
        caches
    }

    /// Computes the MSE loss of reconstructing `target` from `input` and the
    /// parameter gradients via back-propagation.
    pub fn loss_and_gradients(&self, input: &[f64], target: &[f64]) -> (f64, Gradients) {
        let caches = self.forward_cached(input);
        let output = &caches.last().expect("network has layers").output;
        let loss = mse(output, target);
        let mut gradient = mse_gradient(output, target);
        let mut layer_gradients = vec![None; self.layers.len()];
        for (index, (layer, cache)) in self.layers.iter().zip(&caches).enumerate().rev() {
            let (grads, input_gradient) = layer.backward(cache, &gradient);
            layer_gradients[index] = Some(grads);
            gradient = input_gradient;
        }
        let layers = layer_gradients.into_iter().map(|g| g.expect("filled in loop")).collect();
        (loss, Gradients { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_shape() {
        let mlp = Mlp::builder(13)
            .layer(6, Activation::Relu)
            .layer(3, Activation::Relu)
            .layer(13, Activation::Identity)
            .build(0);
        assert_eq!(mlp.input_dim(), 13);
        assert_eq!(mlp.output_dim(), 13);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.parameter_count(), 13 * 6 + 6 + 6 * 3 + 3 + 3 * 13 + 13);
    }

    #[test]
    fn full_network_gradient_matches_numerical() {
        let mut mlp =
            Mlp::builder(3).layer(4, Activation::Tanh).layer(3, Activation::Identity).build(3);
        let input = [0.25, -0.5, 0.75];
        let target = [0.0, 1.0, -1.0];
        let (_, grads) = mlp.loss_and_gradients(&input, &target);

        let eps = 1e-6;
        // Check a handful of weights in each layer.
        for layer_index in 0..2 {
            for row in 0..mlp.layers()[layer_index].output_dim() {
                for col in 0..mlp.layers()[layer_index].input_dim() {
                    let original = mlp.layers()[layer_index].weights().get(row, col);
                    *mlp.layers_mut()[layer_index].weights_mut().get_mut(row, col) = original + eps;
                    let plus = crate::loss::mse(&mlp.forward(&input), &target);
                    *mlp.layers_mut()[layer_index].weights_mut().get_mut(row, col) = original - eps;
                    let minus = crate::loss::mse(&mlp.forward(&input), &target);
                    *mlp.layers_mut()[layer_index].weights_mut().get_mut(row, col) = original;
                    let numeric = (plus - minus) / (2.0 * eps);
                    let analytic = grads.layers[layer_index].weights.get(row, col);
                    assert!(
                        (numeric - analytic).abs() < 1e-5,
                        "layer {layer_index} ({row},{col}): {numeric} vs {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_builder_panics() {
        let _ = Mlp::builder(3).build(0);
    }

    #[test]
    fn batched_forward_columns_are_bit_identical_to_sequential() {
        let mlp = Mlp::builder(13)
            .layer(6, Activation::Tanh)
            .layer(3, Activation::Tanh)
            .layer(13, Activation::Identity)
            .build(9);
        let batch = 5;
        let columns: Vec<Vec<f64>> = (0..batch)
            .map(|j| (0..13).map(|k| (j as f64).mul_add(0.7, -1.3) + 0.11 * k as f64).collect())
            .collect();
        let mut input = vec![0.0; 13 * batch];
        for (j, col) in columns.iter().enumerate() {
            for (k, &v) in col.iter().enumerate() {
                input[k * batch + j] = v;
            }
        }
        let mut batch_scratch = MlpBatchScratch::new();
        let out = mlp.forward_batch_into(&input, batch, &mut batch_scratch).to_vec();
        let mut scratch = MlpScratch::new();
        for (j, col) in columns.iter().enumerate() {
            let single = mlp.forward_into(col, &mut scratch);
            for (k, &expect) in single.iter().enumerate() {
                assert_eq!(out[k * batch + j].to_bits(), expect.to_bits(), "column {j} row {k}");
            }
        }
    }
}
