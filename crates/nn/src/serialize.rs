//! Saving and loading trained models as JSON.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Errors raised when persisting or restoring a model.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The stored document could not be (de)serialized.
    Format(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "model file i/o failed: {err}"),
            Self::Format(err) => write!(f, "model serialization failed: {err}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Format(err) => Some(err),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(err: serde_json::Error) -> Self {
        Self::Format(err)
    }
}

/// Serializes any serde-serialisable model to a JSON string.
///
/// # Errors
///
/// Returns [`PersistError::Format`] if serialization fails.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, PersistError> {
    Ok(serde_json::to_string_pretty(value)?)
}

/// Deserializes a model from a JSON string.
///
/// # Errors
///
/// Returns [`PersistError::Format`] if the document is malformed.
pub fn from_json<T: DeserializeOwned>(json: &str) -> Result<T, PersistError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a model to `path` as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failures and
/// [`PersistError::Format`] on serialization failures.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let json = to_json(value)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a model previously written with [`save_json`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failures and
/// [`PersistError::Format`] on deserialization failures.
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, PersistError> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::Autoencoder;

    /// The JSON layer may lose the last bit of a double, so round-trips are
    /// compared behaviourally (reconstruction outputs) with a tolerance.
    fn assert_models_close(a: &Autoencoder, b: &Autoencoder, input: &[f64]) {
        let out_a = a.reconstruct(input);
        let out_b = b.reconstruct(input);
        assert_eq!(out_a.len(), out_b.len());
        for (x, y) in out_a.iter().zip(&out_b) {
            assert!((x - y).abs() < 1e-9, "reconstruction drifted after round-trip: {x} vs {y}");
        }
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let model = Autoencoder::paper_architecture(5);
        let json = to_json(&model).unwrap();
        let restored: Autoencoder = from_json(&json).unwrap();
        assert_eq!(restored.input_dim(), model.input_dim());
        assert_eq!(restored.latent_dim(), model.latent_dim());
        assert_models_close(&model, &restored, &[0.25; 13]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mavfi_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = Autoencoder::new(4, &[2], 1);
        save_json(&model, &path).unwrap();
        let restored: Autoencoder = load_json(&path).unwrap();
        assert_models_close(&model, &restored, &[0.1, -0.2, 0.3, -0.4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        let result: Result<Autoencoder, _> = from_json("{not json");
        assert!(matches!(result.unwrap_err(), PersistError::Format(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let result: Result<Autoencoder, _> = load_json("/nonexistent/dir/model.json");
        assert!(matches!(result.unwrap_err(), PersistError::Io(_)));
    }
}
