//! Element-wise activation functions.

use serde::{Deserialize, Serialize};

/// Supported activation functions for dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Activation {
    /// Identity (linear) activation.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Self::Identity => x,
            Self::Relu => x.max(0.0),
            Self::Tanh => x.tanh(),
            Self::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative of the activation expressed as a function of the
    /// *pre-activation* input `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Self::Identity => 1.0,
            Self::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Tanh => 1.0 - x.tanh().powi(2),
            Self::Sigmoid => {
                let s = Self::Sigmoid.apply(x);
                s * (1.0 - s)
            }
        }
    }

    /// Applies the activation to every element of a vector.
    pub fn apply_vec(self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.apply(v)).collect()
    }

    /// Applies the activation to every element in place (the
    /// allocation-free counterpart of [`Activation::apply_vec`]).
    pub fn apply_slice(self, values: &mut [f64]) {
        for value in values {
            *value = self.apply(*value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 4] =
        [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid];

    #[test]
    fn relu_clamps_negative_values() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(50.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-50.0) >= 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for activation in ALL {
            for &x in &[-1.3, -0.2, 0.4, 2.1] {
                let numeric = (activation.apply(x + eps) - activation.apply(x - eps)) / (2.0 * eps);
                let analytic = activation.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{activation:?} derivative mismatch at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_vec_preserves_length() {
        let out = Activation::Tanh.apply_vec(&[0.0, 1.0, -1.0]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 0.0);
    }
}
