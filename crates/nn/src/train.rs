//! Unsupervised training of autoencoders on error-free telemetry.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::autoencoder::Autoencoder;
use crate::optimizer::{Adam, Optimizer};

/// Hyper-parameters for autoencoder training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed controlling sample shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, learning_rate: 0.005, shuffle_seed: 0 }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Largest reconstruction error observed on the training data with the
    /// final weights — the paper uses this as the AAD alarm threshold ("the
    /// upper bound of the reconstruction error in the error-free run").
    pub max_reconstruction_error: f64,
}

impl TrainReport {
    /// Final epoch's mean loss, or infinity when no epoch ran.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Trains `model` in place on `samples` (each of the model's input
/// dimension) with Adam + MSE, the configuration the paper uses.
///
/// # Panics
///
/// Panics if `samples` is empty or any sample has the wrong dimension.
pub fn train_autoencoder(
    model: &mut Autoencoder,
    samples: &[Vec<f64>],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "training requires at least one sample");
    for sample in samples {
        assert_eq!(sample.len(), model.input_dim(), "training sample dimension mismatch");
    }

    let mut optimizer = Adam::new(config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0;
        for &index in &order {
            let (loss, grads) = model.loss_and_gradients(&samples[index]);
            optimizer.step(model.network_mut(), &grads);
            total += loss;
        }
        epoch_losses.push(total / samples.len() as f64);
    }

    let max_reconstruction_error =
        samples.iter().map(|sample| model.reconstruction_error(sample)).fold(0.0_f64, f64::max);

    TrainReport { epoch_losses, max_reconstruction_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Synthetic correlated telemetry: the 13 state deltas lie close to a
    /// low-dimensional manifold, like the inter-kernel states of a smoothly
    /// moving MAV.
    fn correlated_samples(count: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let a: f64 = rng.gen_range(-1.0..1.0);
                let b: f64 = rng.gen_range(-1.0..1.0);
                (0..13)
                    .map(|i| {
                        let weight = (i as f64 + 1.0) / 13.0;
                        weight * a + (1.0 - weight) * b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let samples = correlated_samples(200, 1);
        let mut model = Autoencoder::paper_architecture(7);
        let config = TrainConfig { epochs: 20, ..TrainConfig::default() };
        let report = train_autoencoder(&mut model, &samples, &config);
        assert!(report.epoch_losses.len() == 20);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should decrease: {:?}",
            report.epoch_losses
        );
        assert!(report.max_reconstruction_error.is_finite());
    }

    #[test]
    fn trained_model_flags_out_of_distribution_inputs() {
        let samples = correlated_samples(300, 2);
        let mut model = Autoencoder::paper_architecture(3);
        let report = train_autoencoder(&mut model, &samples, &TrainConfig::default());
        // A wildly out-of-distribution vector (as produced by an exponent
        // bit flip) must have a much larger reconstruction error than the
        // training threshold.
        let mut anomaly = samples[0].clone();
        anomaly[4] = 1.0e6;
        assert!(model.reconstruction_error(&anomaly) > report.max_reconstruction_error * 10.0);
    }

    #[test]
    fn training_is_deterministic() {
        let samples = correlated_samples(50, 3);
        let config = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let mut a = Autoencoder::paper_architecture(9);
        let mut b = Autoencoder::paper_architecture(9);
        let ra = train_autoencoder(&mut a, &samples, &config);
        let rb = train_autoencoder(&mut b, &samples, &config);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_training_set_panics() {
        let mut model = Autoencoder::paper_architecture(0);
        let _ = train_autoencoder(&mut model, &[], &TrainConfig::default());
    }
}
