//! Loss functions used during training.

/// Mean squared error between a prediction and a target.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Examples
///
/// ```
/// use mavfi_nn::loss::mse;
///
/// assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
/// ```
pub fn mse(prediction: &[f64], target: &[f64]) -> f64 {
    assert_eq!(prediction.len(), target.len(), "prediction and target must have equal length");
    assert!(!prediction.is_empty(), "loss of an empty vector is undefined");
    prediction.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f64>()
        / prediction.len() as f64
}

/// Gradient of [`mse`] with respect to the prediction.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse_gradient(prediction: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(prediction.len(), target.len(), "prediction and target must have equal length");
    assert!(!prediction.is_empty(), "loss of an empty vector is undefined");
    let scale = 2.0 / prediction.len() as f64;
    prediction.iter().zip(target).map(|(p, t)| scale * (p - t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_vectors() {
        assert_eq!(mse(&[1.0, -2.0, 3.0], &[1.0, -2.0, 3.0]), 0.0);
        assert!(mse_gradient(&[1.0, 2.0], &[1.0, 2.0]).iter().all(|g| *g == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let prediction = vec![0.3, -0.8, 1.2];
        let target = vec![0.1, 0.0, 1.0];
        let grad = mse_gradient(&prediction, &target);
        let eps = 1e-6;
        for i in 0..prediction.len() {
            let mut plus = prediction.clone();
            plus[i] += eps;
            let mut minus = prediction.clone();
            minus[i] -= eps;
            let numeric = (mse(&plus, &target) - mse(&minus, &target)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
