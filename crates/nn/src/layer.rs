//! Fully connected (dense) layers.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::tensor::Matrix;

/// A dense layer computing `activation(W * x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

/// Cached intermediate values of one layer's forward pass, required for
/// back-propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCache {
    /// The layer input.
    pub input: Vec<f64>,
    /// Pre-activation values `W * x + b`.
    pub pre_activation: Vec<f64>,
    /// Post-activation output.
    pub output: Vec<f64>,
}

/// Gradients of one layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradients {
    /// Gradient of the loss with respect to the weights.
    pub weights: Matrix,
    /// Gradient of the loss with respect to the biases.
    pub biases: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier-initialised weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation, seed: u64) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "layer dimensions must be positive");
        Self {
            weights: Matrix::xavier(output_dim, input_dim, seed),
            biases: vec![0.0; output_dim],
            activation,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable access to the weights (for inspection and serialization).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the weights (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Immutable access to the biases.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Mutable access to the biases (used by optimizers).
    pub fn biases_mut(&mut self) -> &mut [f64] {
        &mut self.biases
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_cached(input).output
    }

    /// Forward pass into a caller-provided buffer: the allocation-free
    /// counterpart of [`Dense::forward`], bit-identical in its results
    /// (same matvec summation order, bias add and activation).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        assert_eq!(input.len(), self.input_dim(), "dense layer input dimension mismatch");
        self.weights.matvec_into(input, out);
        for (z, b) in out.iter_mut().zip(&self.biases) {
            *z += b;
        }
        self.activation.apply_slice(out);
    }

    /// Batched forward pass over `batch` feature-major columns (see
    /// [`Matrix::matmul_into`] for the layout): one matrix-matrix pass plus a
    /// broadcast bias add and elementwise activation.  Every column of the
    /// output is bit-identical to [`Dense::forward_into`] on the
    /// corresponding input column — the per-element accumulation order, the
    /// bias add and the activation are the same operations in the same
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `input.len() != self.input_dim() * batch`.
    pub fn forward_batch_into(&self, input: &[f64], batch: usize, out: &mut Vec<f64>) {
        assert_eq!(
            input.len(),
            self.input_dim() * batch,
            "dense layer batched input dimension mismatch"
        );
        self.weights.matmul_into(input, batch, out);
        for (row, b) in self.biases.iter().enumerate() {
            for z in &mut out[row * batch..(row + 1) * batch] {
                *z += b;
            }
        }
        self.activation.apply_slice(out);
    }

    /// Forward pass that keeps the intermediate values needed by
    /// [`Dense::backward`].
    pub fn forward_cached(&self, input: &[f64]) -> LayerCache {
        assert_eq!(input.len(), self.input_dim(), "dense layer input dimension mismatch");
        let mut pre_activation = self.weights.matvec(input);
        for (z, b) in pre_activation.iter_mut().zip(&self.biases) {
            *z += b;
        }
        let output = self.activation.apply_vec(&pre_activation);
        LayerCache { input: input.to_vec(), pre_activation, output }
    }

    /// Back-propagates `output_gradient` (dL/d output) through the layer,
    /// returning the parameter gradients and the gradient with respect to
    /// the layer input.
    pub fn backward(
        &self,
        cache: &LayerCache,
        output_gradient: &[f64],
    ) -> (LayerGradients, Vec<f64>) {
        assert_eq!(output_gradient.len(), self.output_dim(), "gradient dimension mismatch");
        // delta = dL/d pre_activation
        let delta: Vec<f64> = output_gradient
            .iter()
            .zip(&cache.pre_activation)
            .map(|(g, z)| g * self.activation.derivative(*z))
            .collect();
        let mut weight_grad = Matrix::zeros(self.output_dim(), self.input_dim());
        weight_grad.add_outer(&delta, &cache.input, 1.0);
        let input_gradient = self.weights.matvec_transposed(&delta);
        (LayerGradients { weights: weight_grad, biases: delta }, input_gradient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse, mse_gradient};

    #[test]
    fn forward_dimensions() {
        let layer = Dense::new(3, 2, Activation::Identity, 1);
        let out = layer.forward(&[1.0, 0.0, -1.0]);
        assert_eq!(out.len(), 2);
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.output_dim(), 2);
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut layer = Dense::new(4, 3, Activation::Tanh, 7);
        let input = [0.3, -0.7, 0.5, 0.1];
        let target = [0.1, 0.2, -0.3];
        let cache = layer.forward_cached(&input);
        let grad_out = mse_gradient(&cache.output, &target);
        let (grads, _input_grad) = layer.backward(&cache, &grad_out);

        let eps = 1e-6;
        for row in 0..3 {
            for col in 0..4 {
                let original = layer.weights().get(row, col);
                *layer.weights_mut().get_mut(row, col) = original + eps;
                let plus = mse(&layer.forward(&input), &target);
                *layer.weights_mut().get_mut(row, col) = original - eps;
                let minus = mse(&layer.forward(&input), &target);
                *layer.weights_mut().get_mut(row, col) = original;
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = grads.weights.get(row, col);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "weight gradient mismatch at ({row},{col}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn input_gradient_matches_numerical_gradient() {
        let layer = Dense::new(3, 2, Activation::Sigmoid, 5);
        let input = [0.2, -0.4, 0.9];
        let target = [0.0, 1.0];
        let cache = layer.forward_cached(&input);
        let grad_out = mse_gradient(&cache.output, &target);
        let (_, input_grad) = layer.backward(&cache, &grad_out);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = input;
            plus[i] += eps;
            let mut minus = input;
            minus[i] -= eps;
            let numeric = (mse(&layer.forward(&plus), &target)
                - mse(&layer.forward(&minus), &target))
                / (2.0 * eps);
            assert!((numeric - input_grad[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let layer = Dense::new(3, 2, Activation::Identity, 1);
        let _ = layer.forward(&[1.0]);
    }
}
