//! The autoencoder model used by MAVFI's autoencoder-based anomaly
//! detection (AAD).

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::loss::mse;
use crate::network::{Gradients, Mlp, MlpBatchScratch, MlpScratch};

/// An autoencoder: an MLP trained to reproduce its own input, whose
/// reconstruction error serves as an anomaly score.
///
/// The paper's AAD autoencoder has an encoder of fully connected layers with
/// 13, 6 and 3 neurons and a decoder expanding back from the 3-neuron
/// bottleneck to the 13-dimensional input; we realise that as the layer
/// stack `13 → 6 → 3 → 13`.
///
/// # Examples
///
/// ```
/// use mavfi_nn::autoencoder::Autoencoder;
///
/// let model = Autoencoder::paper_architecture(42);
/// let input = vec![0.0; 13];
/// assert_eq!(model.reconstruct(&input).len(), 13);
/// assert!(model.reconstruction_error(&input) >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autoencoder {
    network: Mlp,
    latent_dim: usize,
}

/// Number of monitored inter-kernel state inputs in the paper's autoencoder.
pub const PAPER_INPUT_DIM: usize = 13;
/// Bottleneck width of the paper's autoencoder.
pub const PAPER_LATENT_DIM: usize = 3;

impl Autoencoder {
    /// Creates an autoencoder with an explicit layer plan.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or `input_dim` is zero.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(!hidden.is_empty(), "autoencoder needs at least one hidden layer");
        let mut builder = Mlp::builder(input_dim);
        for &width in hidden {
            builder = builder.layer(width, Activation::Tanh);
        }
        builder = builder.layer(input_dim, Activation::Identity);
        let latent_dim = *hidden.last().expect("hidden not empty");
        Self { network: builder.build(seed), latent_dim }
    }

    /// Creates the paper's 13-6-3-13 architecture.
    pub fn paper_architecture(seed: u64) -> Self {
        Self::new(PAPER_INPUT_DIM, &[6, PAPER_LATENT_DIM], seed)
    }

    /// Input (and output) dimension.
    pub fn input_dim(&self) -> usize {
        self.network.input_dim()
    }

    /// Width of the bottleneck layer.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.network
    }

    /// Mutable access to the underlying network (used during training).
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.network
    }

    /// Reconstructs an input vector.
    pub fn reconstruct(&self, input: &[f64]) -> Vec<f64> {
        self.network.forward(input)
    }

    /// Mean-squared reconstruction error of `input`, the anomaly score used
    /// by AAD.
    pub fn reconstruction_error(&self, input: &[f64]) -> f64 {
        mse(&self.reconstruct(input), input)
    }

    /// [`Autoencoder::reconstruction_error`] through reusable scratch
    /// buffers: zero heap allocations in steady state, bit-identical score.
    /// This is the per-tick scoring path of the AAD detector.
    pub fn reconstruction_error_with(&self, input: &[f64], scratch: &mut MlpScratch) -> f64 {
        mse(self.network.forward_into(input, scratch), input)
    }

    /// Batched [`Autoencoder::reconstruction_error_with`]: scores `batch`
    /// feature-major input columns (element `inputs[k * batch + j]` is
    /// feature `k` of sample `j`, see [`crate::tensor::Matrix::matmul_into`])
    /// with one matrix-matrix pass per layer, appending one score per sample
    /// to `errors` in sample order.  Each score is bit-identical to the
    /// sequential path on the same sample: the per-column forward pass and
    /// the per-column mean-squared error accumulate the same `f64` operations
    /// in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `inputs.len() != self.input_dim() * batch`.
    pub fn reconstruction_error_batch_with(
        &self,
        inputs: &[f64],
        batch: usize,
        scratch: &mut MlpBatchScratch,
        errors: &mut Vec<f64>,
    ) {
        let dim = self.input_dim();
        let reconstructed = self.network.forward_batch_into(inputs, batch, scratch);
        errors.clear();
        for j in 0..batch {
            // Same accumulation as `mse`: squared differences in feature
            // order, then one divide.
            let mut acc = 0.0;
            for k in 0..dim {
                let diff = reconstructed[k * batch + j] - inputs[k * batch + j];
                acc += diff * diff;
            }
            errors.push(acc / dim as f64);
        }
    }

    /// Loss and gradients for one training sample (the target is the input
    /// itself — unsupervised reconstruction).
    pub fn loss_and_gradients(&self, input: &[f64]) -> (f64, Gradients) {
        self.network.loss_and_gradients(input, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_shape() {
        let model = Autoencoder::paper_architecture(0);
        assert_eq!(model.input_dim(), 13);
        assert_eq!(model.latent_dim(), 3);
        // encoder 13->6, 6->3, decoder 3->13
        assert_eq!(model.network().layers().len(), 3);
        assert_eq!(model.network().output_dim(), 13);
    }

    #[test]
    fn reconstruction_error_is_zero_only_for_perfect_reconstruction() {
        let model = Autoencoder::paper_architecture(1);
        let input = vec![0.5; 13];
        let error = model.reconstruction_error(&input);
        assert!(error > 0.0, "an untrained model should not reconstruct perfectly");
    }

    #[test]
    fn custom_architecture_respects_hidden_sizes() {
        let model = Autoencoder::new(5, &[4, 2], 3);
        assert_eq!(model.latent_dim(), 2);
        assert_eq!(model.reconstruct(&[0.0; 5]).len(), 5);
    }

    #[test]
    #[should_panic(expected = "hidden layer")]
    fn empty_hidden_panics() {
        let _ = Autoencoder::new(5, &[], 0);
    }

    #[test]
    fn batched_reconstruction_error_is_bit_identical_to_sequential() {
        let model = Autoencoder::paper_architecture(7);
        let batch = 4;
        let columns: Vec<Vec<f64>> =
            (0..batch).map(|j| (0..13).map(|k| 0.3 * k as f64 - j as f64).collect()).collect();
        let mut inputs = vec![0.0; 13 * batch];
        for (j, col) in columns.iter().enumerate() {
            for (k, &v) in col.iter().enumerate() {
                inputs[k * batch + j] = v;
            }
        }
        let mut scratch = MlpBatchScratch::new();
        let mut errors = Vec::new();
        model.reconstruction_error_batch_with(&inputs, batch, &mut scratch, &mut errors);
        let mut single = MlpScratch::new();
        for (j, col) in columns.iter().enumerate() {
            let expect = model.reconstruction_error_with(col, &mut single);
            assert_eq!(errors[j].to_bits(), expect.to_bits(), "sample {j}");
        }
    }
}
