//! Property-based tests of the neural-network substrate: forward passes,
//! gradients and serialisation.

use mavfi_nn::autoencoder::Autoencoder;
use mavfi_nn::network::{Mlp, MlpScratch};
use mavfi_nn::serialize::{from_json, to_json};
use mavfi_nn::tensor::Matrix;
use mavfi_nn::Activation;
use proptest::prelude::*;

fn finite_inputs(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, dim)
}

proptest! {
    /// The scratch-buffer matvec is bit-identical to the allocating one,
    /// including when the output buffer is reused across shapes.
    #[test]
    fn matvec_into_matches_matvec(
        input in finite_inputs(4),
        seed in any::<u64>(),
        rows in 1usize..6,
    ) {
        let matrix = Matrix::xavier(rows, 4, seed);
        let allocating = matrix.matvec(&input);
        // A dirty, differently-sized buffer must not influence the result.
        let mut reused = vec![f64::NAN; 9];
        matrix.matvec_into(&input, &mut reused);
        prop_assert_eq!(&allocating, &reused);
        // Second call into the now-correctly-sized buffer.
        matrix.matvec_into(&input, &mut reused);
        prop_assert_eq!(&allocating, &reused);
    }

    /// The scratch-buffer forward pass is bit-identical to the allocating
    /// one, for both a fresh and a reused scratch.
    #[test]
    fn forward_into_matches_forward(input in finite_inputs(5), seed in any::<u64>()) {
        let network = Mlp::builder(5)
            .layer(7, Activation::Tanh)
            .layer(2, Activation::Sigmoid)
            .layer(5, Activation::Identity)
            .build(seed);
        let allocating = network.forward(&input);
        let mut scratch = MlpScratch::new();
        prop_assert_eq!(&allocating, &network.forward_into(&input, &mut scratch).to_vec());
        // Reuse the warm scratch: still identical.
        prop_assert_eq!(&allocating, &network.forward_into(&input, &mut scratch).to_vec());
    }
    /// Forward passes produce finite outputs of the declared dimension.
    #[test]
    fn mlp_forward_has_declared_shape(input in finite_inputs(5), seed in any::<u64>()) {
        let network = Mlp::builder(5)
            .layer(4, Activation::Tanh)
            .layer(3, Activation::Identity)
            .build(seed);
        prop_assert_eq!(network.input_dim(), 5);
        prop_assert_eq!(network.output_dim(), 3);
        let output = network.forward(&input);
        prop_assert_eq!(output.len(), 3);
        prop_assert!(output.iter().all(|v| v.is_finite()));
    }

    /// The analytic gradients agree with central finite differences.
    #[test]
    fn gradients_match_finite_differences(input in finite_inputs(4), seed in any::<u64>()) {
        let autoencoder = Autoencoder::new(4, &[3, 2], seed);
        let (_, gradients) = autoencoder.loss_and_gradients(&input);
        let epsilon = 1e-5;
        // Check a handful of weights of the first layer.
        let mut checked = 0;
        'outer: for row in 0..3 {
            for col in 0..4 {
                let mut plus = autoencoder.clone();
                let mut minus = autoencoder.clone();
                *plus.network_mut().layers_mut()[0].weights_mut().get_mut(row, col) += epsilon;
                *minus.network_mut().layers_mut()[0].weights_mut().get_mut(row, col) -= epsilon;
                let numeric = (plus.reconstruction_error(&input)
                    - minus.reconstruction_error(&input))
                    / (2.0 * epsilon);
                let analytic = gradients.layers[0].weights.get(row, col);
                let scale = analytic.abs().max(numeric.abs()).max(1e-3);
                prop_assert!(
                    (analytic - numeric).abs() / scale < 2e-2,
                    "({row},{col}): analytic {analytic} vs numeric {numeric}"
                );
                checked += 1;
                if checked >= 4 {
                    break 'outer;
                }
            }
        }
    }

    /// Reconstruction errors are non-negative and zero-input reconstruction
    /// is finite.
    #[test]
    fn reconstruction_error_is_non_negative(input in finite_inputs(6), seed in any::<u64>()) {
        let autoencoder = Autoencoder::new(6, &[4, 2], seed);
        prop_assert!(autoencoder.reconstruction_error(&input) >= 0.0);
        let reconstruction = autoencoder.reconstruct(&input);
        prop_assert_eq!(reconstruction.len(), 6);
        prop_assert!(reconstruction.iter().all(|v| v.is_finite()));
    }

    /// JSON serialisation round-trips the model: the restored model produces
    /// outputs identical up to the JSON float-printing precision.
    #[test]
    fn serialization_round_trips(input in finite_inputs(5), seed in any::<u64>()) {
        let original = Autoencoder::new(5, &[3], seed);
        let json = to_json(&original).expect("serialise");
        let restored: Autoencoder = from_json(&json).expect("deserialise");
        let a = original.reconstruct(&input);
        let b = restored.reconstruct(&input);
        prop_assert_eq!(a.len(), b.len());
        for (left, right) in a.iter().zip(&b) {
            prop_assert!(
                (left - right).abs() <= 1e-9 * left.abs().max(1.0),
                "restored output diverged: {left} vs {right}"
            );
        }
    }

    /// Parameter counts match the dense-layer dimensions.
    #[test]
    fn parameter_count_matches_architecture(hidden in 1usize..8, bottleneck in 1usize..8) {
        let autoencoder = Autoencoder::new(13, &[hidden, bottleneck], 1);
        let expected: usize = autoencoder
            .network()
            .layers()
            .iter()
            .map(|layer| layer.input_dim() * layer.output_dim() + layer.output_dim())
            .sum();
        prop_assert_eq!(autoencoder.network().parameter_count(), expected);
    }
}
