//! Property-based tests of the detection substrate: preprocessing codes,
//! online statistics, detection-quality metrics and detector invariants.

use mavfi_detect::calibration::{CorruptionProfile, LabeledStream, SyntheticAnomalyConfig};
use mavfi_detect::gad::{Cgad, CgadConfig};
use mavfi_detect::metrics::{ConfusionMatrix, GroundTruth, RocCurve};
use mavfi_detect::preprocess::{magnitude_code, sign_exponent};
use mavfi_detect::welford::Welford;
use mavfi_ppc::states::StateField;
use proptest::prelude::*;

proptest! {
    /// The magnitude code is odd in its argument: code(-v) == -code(v).
    #[test]
    fn magnitude_code_is_antisymmetric(value in -1.0e300f64..1.0e300) {
        prop_assume!(value.is_finite());
        let positive = magnitude_code(value);
        let negative = magnitude_code(-value);
        prop_assert_eq!(positive, -negative);
    }

    /// The magnitude code grows (weakly) with the magnitude of its argument.
    #[test]
    fn magnitude_code_is_monotone_in_magnitude(a in 0.0f64..1.0e300, b in 0.0f64..1.0e300) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(magnitude_code(small) <= magnitude_code(large));
    }

    /// Mantissa-level perturbations move the code by only a few units while
    /// exponent-scale changes move it by hundreds.
    #[test]
    fn magnitude_code_contrast(value in 0.1f64..1.0e4) {
        let nearby = magnitude_code(value * 1.01);
        let far = magnitude_code(value * 1.0e40);
        let base = magnitude_code(value);
        prop_assert!((i32::from(nearby) - i32::from(base)).abs() <= 8);
        prop_assert!((i32::from(far) - i32::from(base)).abs() >= 1000);
    }

    /// The raw sign+exponent transform ignores the mantissa entirely.
    #[test]
    fn sign_exponent_ignores_mantissa(value in 1.0f64..1.0e300, mantissa_scale in 1.0f64..1.999) {
        prop_assume!((value * mantissa_scale).is_finite());
        // Scaling by < 2 within the same binade keeps the exponent unless the
        // product crosses a power of two; pick the case where it does not.
        let scaled = value * mantissa_scale;
        if scaled.log2().floor() == value.log2().floor() {
            prop_assert_eq!(sign_exponent(value), sign_exponent(scaled));
        }
    }

    /// Welford's online estimator matches the two-pass batch computation.
    #[test]
    fn welford_matches_batch(samples in proptest::collection::vec(-1.0e6f64..1.0e6, 2..200)) {
        let mut online = Welford::new();
        for &sample in &samples {
            online.push(sample);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        let scale = mean.abs().max(1.0);
        prop_assert!((online.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((online.std_dev() - variance.sqrt()).abs() / scale.max(variance.sqrt()) < 1e-6);
    }

    /// Confusion-matrix rates always live in [0, 1] and counts always add up.
    #[test]
    fn confusion_matrix_rates_are_bounded(
        verdicts in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..300)
    ) {
        let mut matrix = ConfusionMatrix::new();
        for (corrupted, alarmed) in &verdicts {
            let truth = if *corrupted { GroundTruth::Corrupted } else { GroundTruth::Clean };
            matrix.record(truth, *alarmed);
        }
        prop_assert_eq!(matrix.total() as usize, verdicts.len());
        prop_assert_eq!(matrix.positives() + matrix.negatives(), matrix.total());
        for rate in [matrix.precision(), matrix.recall(), matrix.false_positive_rate(), matrix.accuracy(), matrix.f1()] {
            prop_assert!((0.0..=1.0).contains(&rate), "rate {rate} out of bounds");
        }
    }

    /// ROC curves are monotone staircases with AUC in [0, 1].
    #[test]
    fn roc_curves_are_monotone_and_bounded(
        scored in proptest::collection::vec((0.0f64..100.0, any::<bool>()), 2..300)
    ) {
        let scored: Vec<(f64, GroundTruth)> = scored
            .into_iter()
            .map(|(score, corrupted)| {
                (score, if corrupted { GroundTruth::Corrupted } else { GroundTruth::Clean })
            })
            .collect();
        let curve = RocCurve::from_scores(&scored);
        if !curve.is_empty() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&curve.auc()));
            for pair in curve.points().windows(2) {
                prop_assert!(pair[1].false_positive_rate >= pair[0].false_positive_rate - 1e-12);
                prop_assert!(pair[1].true_positive_rate >= pair[0].true_positive_rate - 1e-12);
            }
            prop_assert!(curve.tpr_at_fpr(1.0) >= curve.tpr_at_fpr(0.0) - 1e-12);
        }
    }

    /// A Gaussian detector never alarms on a value closer to its baseline
    /// mean than the configured minimum deviation.
    #[test]
    fn cgad_respects_min_deviation(
        baseline in proptest::collection::vec(-10.0f64..10.0, 30..120),
        wiggle in -30.0f64..30.0,
    ) {
        let config = CgadConfig { min_deviation: 48.0, ..CgadConfig::default() };
        let mut cgad = Cgad::new(StateField::CommandVx, config);
        for &sample in &baseline {
            cgad.prime(sample);
        }
        // |wiggle| < 48 relative to a mean in [-10, 10] keeps the deviation
        // under the minimum.
        let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let probe = mean + wiggle.clamp(-40.0, 40.0);
        prop_assert!(!cgad.observe(probe));
    }

    /// Synthesised evaluation streams preserve sample count and label every
    /// sample consistently with the requested corruption rate bounds.
    #[test]
    fn labeled_streams_preserve_length(
        count in 1usize..200,
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let clean = vec![[0.5f64; 13]; count];
        let stream = LabeledStream::synthesize(
            &clean,
            SyntheticAnomalyConfig {
                corruption_rate: rate,
                profile: CorruptionProfile::ExponentFlip { magnitude: 5000.0 },
                seed,
            },
        );
        prop_assert_eq!(stream.len(), count);
        prop_assert!(stream.corrupted() <= count);
        // Every corrupted sample differs from the clean template.
        for (sample, truth) in stream.samples() {
            if *truth == GroundTruth::Corrupted {
                prop_assert!(sample.iter().any(|v| (*v - 0.5).abs() > 1.0));
            } else {
                prop_assert!(sample.iter().all(|v| (*v - 0.5).abs() < 1e-12));
            }
        }
    }
}
