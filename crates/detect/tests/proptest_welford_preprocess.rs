//! Property-based tests of the detector math added for the parallel
//! campaign engine: Welford merge (associativity, identity, agreement with
//! the single-pass estimator, variance non-negativity) and preprocessing
//! round-trips (delta telescoping, reset semantics, code antisymmetry).
//!
//! Regression seeds live in `proptest-regressions/proptest_welford_preprocess.txt`
//! and are replayed before the generated cases.

use mavfi_detect::preprocess::{magnitude_code, Preprocessor};
use mavfi_detect::welford::Welford;
use mavfi_ppc::states::{MonitoredStates, StateField};
use proptest::prelude::*;

fn filled(samples: &[f64]) -> Welford {
    let mut stats = Welford::new();
    for &x in samples {
        stats.push(x);
    }
    stats
}

/// Absolute-plus-relative comparison: merge reassociation commits the usual
/// floating-point sins, so exact equality is too strict for huge inputs.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9_f64.max(1e-9 * a.abs().max(b.abs()))
}

fn states_from(values: &[f64]) -> MonitoredStates {
    let mut states = MonitoredStates::default();
    for (field, &value) in StateField::ALL.iter().zip(values) {
        states.set_field(*field, value);
    }
    states
}

proptest! {
    /// Merging two estimators matches pushing every sample into one.
    #[test]
    fn merge_matches_single_pass(
        left in proptest::collection::vec(-1.0e6f64..1.0e6, 0..60),
        right in proptest::collection::vec(-1.0e6f64..1.0e6, 0..60),
    ) {
        let merged = filled(&left).merge(&filled(&right));
        let combined: Vec<f64> = left.iter().chain(&right).copied().collect();
        let single = filled(&combined);
        prop_assert_eq!(merged.count(), single.count());
        prop_assert!(close(merged.mean(), single.mean()),
            "mean: {} vs {}", merged.mean(), single.mean());
        prop_assert!(close(merged.std_dev(), single.std_dev()),
            "std: {} vs {}", merged.std_dev(), single.std_dev());
    }

    /// Merge is associative up to floating-point noise.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(-1.0e6f64..1.0e6, 0..40),
        b in proptest::collection::vec(-1.0e6f64..1.0e6, 0..40),
        c in proptest::collection::vec(-1.0e6f64..1.0e6, 0..40),
    ) {
        let (a, b, c) = (filled(&a), filled(&b), filled(&c));
        let left_first = a.merge(&b).merge(&c);
        let right_first = a.merge(&b.merge(&c));
        prop_assert_eq!(left_first.count(), right_first.count());
        prop_assert!(close(left_first.mean(), right_first.mean()),
            "mean: {} vs {}", left_first.mean(), right_first.mean());
        prop_assert!(close(left_first.std_dev(), right_first.std_dev()),
            "std: {} vs {}", left_first.std_dev(), right_first.std_dev());
    }

    /// The empty estimator is a two-sided identity, exactly.
    #[test]
    fn merge_empty_is_exact_identity(
        samples in proptest::collection::vec(-1.0e9f64..1.0e9, 0..50),
    ) {
        let stats = filled(&samples);
        prop_assert_eq!(stats.merge(&Welford::new()), stats);
        prop_assert_eq!(Welford::new().merge(&stats), stats);
    }

    /// Variance (and hence the standard deviation) never goes negative, for
    /// pushes and for arbitrarily shaped merges — including non-finite
    /// inputs, which the estimator ignores.
    #[test]
    fn variance_is_non_negative(
        samples in proptest::collection::vec(any::<f64>(), 0..80),
        at in 0usize..80,
    ) {
        let split = at.min(samples.len());
        let merged = filled(&samples[..split]).merge(&filled(&samples[split..]));
        // The sum of squared deviations accumulates only non-negative terms,
        // so it may overflow to +inf on astronomically spread inputs but can
        // never go negative or NaN.
        prop_assert!(merged.std_dev() >= 0.0, "std {}", merged.std_dev());
        prop_assert!(!merged.std_dev().is_nan());
        let single = filled(&samples);
        prop_assert!(single.std_dev() >= 0.0);
        prop_assert!(!single.std_dev().is_nan());
    }

    /// Per-field deltas telescope: integrating the delta stream recovers the
    /// final magnitude code exactly (the preprocessing "round-trip").
    #[test]
    fn preprocessor_deltas_telescope(
        snapshots in proptest::collection::vec(
            proptest::collection::vec(-1.0e9f64..1.0e9, 13),
            1..20,
        ),
    ) {
        let mut preprocessor = Preprocessor::new();
        let mut integrated = [0.0f64; MonitoredStates::DIM];
        for snapshot in &snapshots {
            let deltas = preprocessor.process(&states_from(snapshot));
            for (total, delta) in integrated.iter_mut().zip(deltas) {
                *total += delta;
            }
        }
        let first = states_from(&snapshots[0]);
        let last = states_from(snapshots.last().unwrap());
        for (index, (total, (&first_raw, &last_raw))) in integrated
            .iter()
            .zip(first.as_array().iter().zip(last.as_array().iter()))
            .enumerate()
        {
            let expected = f64::from(magnitude_code(last_raw)) - f64::from(magnitude_code(first_raw));
            prop_assert_eq!(*total, expected, "field {}", index);
        }
    }

    /// `reset` erases history: the next delta vector is identically zero no
    /// matter what was seen before.
    #[test]
    fn preprocessor_reset_round_trips(
        before in proptest::collection::vec(-1.0e9f64..1.0e9, 13),
        after in proptest::collection::vec(-1.0e9f64..1.0e9, 13),
    ) {
        let mut preprocessor = Preprocessor::new();
        prop_assert_eq!(preprocessor.process(&states_from(&before)), [0.0; 13]);
        prop_assert!(preprocessor.has_history());
        preprocessor.reset();
        prop_assert!(!preprocessor.has_history());
        prop_assert_eq!(preprocessor.process(&states_from(&after)), [0.0; 13]);
    }

    /// The magnitude code is odd and bounded: negating the input negates the
    /// code, and the code always fits the saturated i16 range.
    #[test]
    fn magnitude_code_is_odd_and_saturating(value in any::<f64>()) {
        prop_assume!(!value.is_nan());
        prop_assert_eq!(magnitude_code(-value), -magnitude_code(value));
        prop_assert!(i32::from(magnitude_code(value)).abs() <= i32::from(i16::MAX));
    }
}
