//! Autoencoder-based anomaly detection (AAD, paper §IV-D).

use mavfi_nn::autoencoder::Autoencoder;
use mavfi_nn::network::{MlpBatchScratch, MlpScratch};
use mavfi_nn::train::{train_autoencoder, TrainConfig, TrainReport};
use mavfi_ppc::states::MonitoredStates;
use serde::{Deserialize, Serialize};

/// Reusable buffers for the per-tick AAD scoring path: the normalised input
/// vector plus the autoencoder's forward-pass scratch.  After the first
/// score the buffers are at capacity and [`AadDetector::score_with`] /
/// [`AadDetector::observe_with`] perform zero heap allocations.
///
/// Scratches hold no semantic state: a fresh scratch and a reused one
/// produce bit-identical scores.
#[derive(Debug, Clone, Default)]
pub struct AadScratch {
    normalized: Vec<f64>,
    mlp: MlpScratch,
}

impl AadScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable buffers for [`AadDetector::score_batch_with`] /
/// [`AadDetector::observe_batch_with`]: the feature-major normalised input
/// matrix, the batched forward-pass scratch, and the per-sample score and
/// alarm outputs.  After the first batch of a given size the buffers are at
/// capacity and the batched scoring path performs zero heap allocations.
///
/// Scratches hold no semantic state: a fresh scratch and a reused one
/// produce bit-identical scores.
#[derive(Debug, Clone, Default)]
pub struct AadBatchScratch {
    inputs: Vec<f64>,
    mlp: MlpBatchScratch,
    scores: Vec<f64>,
    alarms: Vec<bool>,
}

impl AadBatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Configuration of the autoencoder detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AadConfig {
    /// Multiplier applied to the worst-case training reconstruction error to
    /// form the alarm threshold (the paper takes the training upper bound;
    /// a small margin reduces false alarms on unseen-but-normal data).
    pub threshold_margin: f64,
    /// Scale applied to the per-dimension z-scores before they enter the
    /// network, keeping normal data within the well-conditioned range of
    /// `tanh`.
    pub input_scale: f64,
    /// Floor on each dimension's standard deviation (in preprocessed code
    /// units) used for normalisation, so states that barely move during
    /// training do not blow up the z-scores of benign mantissa-level noise.
    pub min_std: f64,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for AadConfig {
    fn default() -> Self {
        Self { threshold_margin: 2.0, input_scale: 0.25, min_std: 4.0, seed: 7 }
    }
}

/// The autoencoder-based detector: a single model over all 13 monitored
/// inter-kernel states, exploiting their correlation.
///
/// Inputs are normalised per dimension (z-scores against the training
/// telemetry) before entering the network.  Without this, dimensions with
/// naturally wide delta distributions (for example `time_to_collision`
/// switching between "clear" and "obstacle ahead") dominate the training
/// reconstruction error and mask corruption of the narrow dimensions the
/// paper cares about (way-point coordinates, command velocities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AadDetector {
    autoencoder: Autoencoder,
    threshold: f64,
    config: AadConfig,
    norm_mean: Vec<f64>,
    norm_std: Vec<f64>,
    alarms: u64,
    observations: u64,
}

impl AadDetector {
    /// Trains a detector on error-free preprocessed telemetry.
    ///
    /// Returns the detector together with the training report.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(
        samples: &[[f64; MonitoredStates::DIM]],
        config: AadConfig,
        train_config: &TrainConfig,
    ) -> (Self, TrainReport) {
        assert!(!samples.is_empty(), "AAD training requires error-free telemetry");
        let (norm_mean, norm_std) = normalization_stats(samples, config.min_std);
        let scaled: Vec<Vec<f64>> = samples
            .iter()
            .map(|sample| normalize(sample, &norm_mean, &norm_std, config.input_scale))
            .collect();
        let mut autoencoder = Autoencoder::paper_architecture(config.seed);
        let report = train_autoencoder(&mut autoencoder, &scaled, train_config);
        let threshold = (report.max_reconstruction_error * config.threshold_margin).max(1e-9);
        (
            Self {
                autoencoder,
                threshold,
                config,
                norm_mean,
                norm_std,
                alarms: 0,
                observations: 0,
            },
            report,
        )
    }

    /// Creates a detector from an already trained autoencoder and an explicit
    /// threshold (used when loading persisted models).  The normalisation is
    /// the identity; use [`AadDetector::with_normalization`] to restore the
    /// training statistics.
    pub fn from_parts(autoencoder: Autoencoder, threshold: f64, config: AadConfig) -> Self {
        Self {
            autoencoder,
            threshold,
            config,
            norm_mean: vec![0.0; MonitoredStates::DIM],
            norm_std: vec![1.0; MonitoredStates::DIM],
            alarms: 0,
            observations: 0,
        }
    }

    /// Replaces the per-dimension normalisation statistics (builder style),
    /// typically when reloading a persisted detector.
    ///
    /// # Panics
    ///
    /// Panics if `mean` and `std` are not 13 elements long.
    pub fn with_normalization(mut self, mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), MonitoredStates::DIM, "mean must have one entry per state");
        assert_eq!(std.len(), MonitoredStates::DIM, "std must have one entry per state");
        self.norm_mean = mean;
        self.norm_std = std.into_iter().map(|s| s.max(1e-9)).collect();
        self
    }

    /// The per-dimension normalisation statistics `(mean, std)` learned from
    /// the training telemetry.
    pub fn normalization(&self) -> (&[f64], &[f64]) {
        (&self.norm_mean, &self.norm_std)
    }

    /// The alarm threshold on the reconstruction error.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying autoencoder.
    pub fn autoencoder(&self) -> &Autoencoder {
        &self.autoencoder
    }

    /// The detector configuration.
    pub fn config(&self) -> AadConfig {
        self.config
    }

    /// Number of alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Number of vectors observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Reconstruction-error anomaly score of one preprocessed delta vector.
    pub fn score(&self, deltas: &[f64; MonitoredStates::DIM]) -> f64 {
        self.score_with(deltas, &mut AadScratch::new())
    }

    /// [`AadDetector::score`] through reusable scratch buffers: zero heap
    /// allocations in steady state, bit-identical score.  This is the path
    /// the detector tap runs every pipeline tick.
    pub fn score_with(
        &self,
        deltas: &[f64; MonitoredStates::DIM],
        scratch: &mut AadScratch,
    ) -> f64 {
        normalize_into(
            deltas,
            &self.norm_mean,
            &self.norm_std,
            self.config.input_scale,
            &mut scratch.normalized,
        );
        self.autoencoder.reconstruction_error_with(&scratch.normalized, &mut scratch.mlp)
    }

    /// Observes one vector; returns `true` when the reconstruction error
    /// exceeds the threshold.
    pub fn observe(&mut self, deltas: &[f64; MonitoredStates::DIM]) -> bool {
        self.observe_with(deltas, &mut AadScratch::new())
    }

    /// [`AadDetector::observe`] through reusable scratch buffers
    /// (allocation-free, bit-identical decisions).
    pub fn observe_with(
        &mut self,
        deltas: &[f64; MonitoredStates::DIM],
        scratch: &mut AadScratch,
    ) -> bool {
        let score = self.score_with(deltas, scratch);
        self.record_score(score)
    }

    /// Records an already computed anomaly score against this detector's
    /// counters and threshold; returns `true` on alarm.  `observe_with(d, s)`
    /// is exactly `record_score(score_with(d, s))` — batched drivers score
    /// a whole batch with [`AadDetector::score_batch_with`] on a shared
    /// reference detector and then feed each score to the per-mission
    /// detector's `record_score`, producing the same decisions and counters
    /// as per-mission `observe_with` calls.
    pub fn record_score(&mut self, score: f64) -> bool {
        self.observations += 1;
        let alarm = score > self.threshold;
        if alarm {
            self.alarms += 1;
        }
        alarm
    }

    /// Scores a batch of preprocessed delta vectors with one matrix-matrix
    /// pass per network layer, returning one score per vector in input
    /// order.  Score `j` is bit-identical to
    /// [`AadDetector::score_with`]`(&deltas[j], …)`: the normalisation, the
    /// per-column forward pass and the per-column mean-squared error perform
    /// the same `f64` operations in the same order (see
    /// [`mavfi_nn::autoencoder::Autoencoder::reconstruction_error_batch_with`]).
    ///
    /// The returned slice borrows from `scratch` and is valid until the
    /// scratch's next use.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty.
    pub fn score_batch_with<'scratch>(
        &self,
        deltas: &[[f64; MonitoredStates::DIM]],
        scratch: &'scratch mut AadBatchScratch,
    ) -> &'scratch [f64] {
        assert!(!deltas.is_empty(), "batched scoring requires at least one vector");
        let batch = deltas.len();
        scratch.inputs.clear();
        scratch.inputs.resize(MonitoredStates::DIM * batch, 0.0);
        for (j, sample) in deltas.iter().enumerate() {
            for (k, value) in sample.iter().enumerate() {
                // Same arithmetic as `normalize_into`, transposed into the
                // feature-major batch layout.
                let finite = if value.is_finite() { *value } else { 0.0 };
                scratch.inputs[k * batch + j] =
                    (finite - self.norm_mean[k]) / self.norm_std[k] * self.config.input_scale;
            }
        }
        self.autoencoder.reconstruction_error_batch_with(
            &scratch.inputs,
            batch,
            &mut scratch.mlp,
            &mut scratch.scores,
        );
        &scratch.scores
    }

    /// Batched [`AadDetector::observe_with`]: scores every vector with
    /// [`AadDetector::score_batch_with`], then records each score (in input
    /// order) against this detector's counters.  Returns one alarm flag per
    /// vector, borrowed from `scratch`.  Decisions and counters are
    /// bit-identical to calling `observe_with` per vector: scoring depends
    /// only on the trained weights, never on the counters, so scoring the
    /// whole batch before recording cannot change any decision.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty.
    pub fn observe_batch_with<'scratch>(
        &mut self,
        deltas: &[[f64; MonitoredStates::DIM]],
        scratch: &'scratch mut AadBatchScratch,
    ) -> &'scratch [bool] {
        self.score_batch_with(deltas, scratch);
        let AadBatchScratch { scores, alarms, .. } = scratch;
        alarms.clear();
        for &score in scores.iter() {
            alarms.push(self.record_score(score));
        }
        &scratch.alarms
    }
}

/// Per-dimension mean and (floored) standard deviation of the training
/// telemetry.
fn normalization_stats(
    samples: &[[f64; MonitoredStates::DIM]],
    min_std: f64,
) -> (Vec<f64>, Vec<f64>) {
    let count = samples.len() as f64;
    let mut mean = vec![0.0; MonitoredStates::DIM];
    for sample in samples {
        for (slot, value) in mean.iter_mut().zip(sample) {
            *slot += value / count;
        }
    }
    let mut std = vec![0.0; MonitoredStates::DIM];
    if samples.len() > 1 {
        for sample in samples {
            for ((slot, value), mean) in std.iter_mut().zip(sample).zip(&mean) {
                *slot += (value - mean) * (value - mean) / (count - 1.0);
            }
        }
    }
    let floor = min_std.max(1e-9);
    let std = std.into_iter().map(|variance: f64| variance.sqrt().max(floor)).collect();
    (mean, std)
}

/// Normalises a delta vector to scaled per-dimension z-scores.
fn normalize(
    deltas: &[f64; MonitoredStates::DIM],
    mean: &[f64],
    std: &[f64],
    input_scale: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(deltas.len());
    normalize_into(deltas, mean, std, input_scale, &mut out);
    out
}

/// [`normalize`] into a reusable buffer (same element order and arithmetic).
fn normalize_into(
    deltas: &[f64; MonitoredStates::DIM],
    mean: &[f64],
    std: &[f64],
    input_scale: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(deltas.iter().zip(mean).zip(std).map(|((value, mean), std)| {
        let finite = if value.is_finite() { *value } else { 0.0 };
        (finite - mean) / std * input_scale
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_ppc::states::StateField;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Correlated normal telemetry: deltas move together as they do when the
    /// vehicle manoeuvres smoothly.
    fn normal_samples(count: usize, seed: u64) -> Vec<[f64; 13]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let intensity: f64 = rng.gen_range(-6.0..6.0);
                std::array::from_fn(|i| {
                    let coupling = 0.4 + 0.6 * ((i % 5) as f64 / 5.0);
                    intensity * coupling + rng.gen_range(-1.5..1.5)
                })
            })
            .collect()
    }

    fn trained_detector(seed: u64) -> AadDetector {
        let samples = normal_samples(400, seed);
        let train_config = TrainConfig { epochs: 25, ..TrainConfig::default() };
        AadDetector::train(&samples, AadConfig::default(), &train_config).0
    }

    #[test]
    fn normal_data_rarely_alarms_and_corruption_always_does() {
        let mut detector = trained_detector(1);
        let held_out = normal_samples(100, 99);
        let mut false_alarms = 0;
        for sample in &held_out {
            if detector.observe(sample) {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 5, "too many false alarms: {false_alarms}/100");

        let mut corrupted = held_out[0];
        corrupted[StateField::WaypointZ.index()] = 12_000.0;
        assert!(detector.observe(&corrupted), "an exponent-flip-sized delta must alarm");
        assert!(detector.alarms() >= 1);
        assert_eq!(detector.observations(), 101);
    }

    #[test]
    fn correlation_violations_are_detected_even_within_per_field_range() {
        // Train on strongly correlated data, then present a sample whose
        // individual values are in range but whose correlation is broken —
        // the advantage the paper attributes to AAD over GAD.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<[f64; 13]> = (0..500)
            .map(|_| {
                let a: f64 = rng.gen_range(-8.0..8.0);
                std::array::from_fn(|i| if i < 7 { a } else { -a } + rng.gen_range(-0.5..0.5))
            })
            .collect();
        let train_config = TrainConfig { epochs: 40, ..TrainConfig::default() };
        let (mut detector, _) = AadDetector::train(&samples, AadConfig::default(), &train_config);

        // In-range magnitudes, broken correlation: all fields +8.
        let broken: [f64; 13] = [8.0; 13];
        assert!(
            detector.observe(&broken),
            "correlation break should raise the reconstruction error"
        );
    }

    #[test]
    fn score_is_deterministic_and_threshold_positive() {
        let detector = trained_detector(2);
        let sample = normal_samples(1, 3)[0];
        assert_eq!(detector.score(&sample), detector.score(&sample));
        assert!(detector.threshold() > 0.0);
    }

    #[test]
    #[should_panic(expected = "error-free telemetry")]
    fn empty_training_panics() {
        let _ = AadDetector::train(&[], AadConfig::default(), &TrainConfig::default());
    }

    #[test]
    fn narrow_dimension_corruption_is_not_masked_by_a_wide_dimension() {
        // One dimension legitimately swings by hundreds of code units (like
        // time_to_collision flipping between clear and obstructed); the
        // others stay narrow.  A corruption of a narrow dimension must still
        // be detected — the scenario that motivates per-dimension
        // normalisation.
        let mut rng = StdRng::seed_from_u64(21);
        let samples: Vec<[f64; 13]> = (0..500)
            .map(|_| {
                std::array::from_fn(|i| {
                    if i == StateField::TimeToCollision.index() {
                        if rng.gen_bool(0.1) {
                            rng.gen_range(-600.0..600.0)
                        } else {
                            rng.gen_range(-5.0..5.0)
                        }
                    } else {
                        rng.gen_range(-4.0..4.0)
                    }
                })
            })
            .collect();
        let (mut detector, _) = AadDetector::train(
            &samples,
            AadConfig::default(),
            &TrainConfig { epochs: 25, ..TrainConfig::default() },
        );
        // An exponent-flip-to-zero of a ~40 m way-point X: delta ≈ -172.
        let mut corrupted = samples[0];
        corrupted[StateField::WaypointX.index()] = -172.0;
        assert!(
            detector.observe(&corrupted),
            "way-point corruption must not hide behind the wide time-to-collision dimension"
        );
    }

    #[test]
    fn normalization_statistics_are_exposed_and_floored() {
        let samples = normal_samples(200, 4);
        let (detector, _) = AadDetector::train(
            &samples,
            AadConfig::default(),
            &TrainConfig { epochs: 2, ..TrainConfig::default() },
        );
        let (mean, std) = detector.normalization();
        assert_eq!(mean.len(), 13);
        assert_eq!(std.len(), 13);
        assert!(std.iter().all(|s| *s >= AadConfig::default().min_std));
    }

    #[test]
    fn batched_scores_and_alarms_are_bit_identical_to_sequential() {
        let detector = trained_detector(6);
        let mut deltas = normal_samples(17, 42);
        deltas[4][StateField::WaypointZ.index()] = 9_000.0; // guaranteed alarm
        deltas[11][StateField::CommandVx.index()] = f64::NAN; // non-finite squash path

        let mut batch_scratch = AadBatchScratch::new();
        let mut scratch = AadScratch::new();

        let scores = detector.score_batch_with(&deltas, &mut batch_scratch).to_vec();
        for (j, sample) in deltas.iter().enumerate() {
            let expect = detector.score_with(sample, &mut scratch);
            assert_eq!(scores[j].to_bits(), expect.to_bits(), "score {j}");
        }

        let mut batched = detector.clone();
        let alarms = batched.observe_batch_with(&deltas, &mut batch_scratch).to_vec();
        let mut sequential = detector.clone();
        for (j, sample) in deltas.iter().enumerate() {
            assert_eq!(alarms[j], sequential.observe_with(sample, &mut scratch), "alarm {j}");
        }
        assert_eq!(batched.alarms(), sequential.alarms());
        assert_eq!(batched.observations(), sequential.observations());
    }

    #[test]
    fn record_score_matches_observe() {
        let detector = trained_detector(7);
        let sample = normal_samples(1, 8)[0];
        let mut via_observe = detector.clone();
        let mut via_record = detector.clone();
        let mut scratch = AadScratch::new();
        let score = detector.score_with(&sample, &mut scratch);
        assert_eq!(via_observe.observe_with(&sample, &mut scratch), via_record.record_score(score));
        assert_eq!(via_observe.alarms(), via_record.alarms());
        assert_eq!(via_observe.observations(), via_record.observations());
    }

    #[test]
    fn from_parts_round_trips_with_normalization() {
        let samples = normal_samples(200, 5);
        let (trained, _) = AadDetector::train(
            &samples,
            AadConfig::default(),
            &TrainConfig { epochs: 2, ..TrainConfig::default() },
        );
        let (mean, std) = trained.normalization();
        let rebuilt = AadDetector::from_parts(
            trained.autoencoder().clone(),
            trained.threshold(),
            trained.config(),
        )
        .with_normalization(mean.to_vec(), std.to_vec());
        let sample = samples[0];
        assert_eq!(rebuilt.score(&sample), trained.score(&sample));
    }
}
