//! Exponentially-weighted-moving-average (EWMA) anomaly detection, an
//! ablation baseline for the paper's Gaussian scheme.
//!
//! Where GAD models each state's delta with a *cumulative* mean and standard
//! deviation (Welford / Knuth recurrences), an EWMA detector keeps an
//! exponentially decaying estimate of both, so the baseline tracks slow
//! drifts of the flight regime at the cost of being easier for a slowly
//! growing corruption to hide inside.  Comparing the two quantifies how much
//! of GAD's performance comes from its long memory.

use mavfi_ppc::states::{MonitoredStates, Stage, StateField};
use serde::{Deserialize, Serialize};

/// Configuration of one per-state EWMA detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaConfig {
    /// Smoothing factor in `(0, 1]`; larger forgets faster.
    pub alpha: f64,
    /// Alarm threshold in multiples of the EWMA standard deviation.
    pub n_sigma: f64,
    /// Samples absorbed before alarms may fire.
    pub warmup_samples: u64,
    /// Absolute deviation below which a value never alarms, mirroring
    /// [`CgadConfig::min_deviation`](crate::gad::CgadConfig::min_deviation).
    pub min_deviation: f64,
}

impl Default for EwmaConfig {
    fn default() -> Self {
        Self { alpha: 0.05, n_sigma: 6.0, warmup_samples: 20, min_deviation: 48.0 }
    }
}

/// EWMA estimator and range detector for a single monitored state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaDetector {
    field: StateField,
    config: EwmaConfig,
    mean: f64,
    variance: f64,
    samples: u64,
    alarms: u64,
}

impl EwmaDetector {
    /// Creates a detector for `field`.
    ///
    /// # Panics
    ///
    /// Panics if `config.alpha` is not in `(0, 1]`.
    pub fn new(field: StateField, config: EwmaConfig) -> Self {
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {}",
            config.alpha
        );
        Self { field, config, mean: 0.0, variance: 0.0, samples: 0, alarms: 0 }
    }

    /// The monitored field.
    pub fn field(&self) -> StateField {
        self.field
    }

    /// Number of samples absorbed into the baseline.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Current EWMA mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current EWMA standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Anomaly score of `delta`: deviation from the EWMA mean in EWMA
    /// standard deviations (0 while the baseline is degenerate).
    pub fn score(&self, delta: f64) -> f64 {
        let std = self.std_dev();
        if std <= f64::EPSILON {
            0.0
        } else {
            (delta - self.mean).abs() / std
        }
    }

    /// Pre-loads the baseline with an error-free sample without alarm
    /// checking.
    pub fn prime(&mut self, delta: f64) {
        self.absorb(delta);
    }

    fn absorb(&mut self, delta: f64) {
        if !delta.is_finite() {
            return;
        }
        if self.samples == 0 {
            self.mean = delta;
            self.variance = 0.0;
        } else {
            let alpha = self.config.alpha;
            let diff = delta - self.mean;
            self.mean += alpha * diff;
            self.variance = (1.0 - alpha) * (self.variance + alpha * diff * diff);
        }
        self.samples += 1;
    }

    /// Observes one preprocessed delta; returns `true` on alarm.  Alarming
    /// samples are not absorbed into the baseline.
    pub fn observe(&mut self, delta: f64) -> bool {
        let warmed = self.samples >= self.config.warmup_samples;
        let deviation = (delta - self.mean).abs();
        let is_outlier = warmed
            && deviation > self.config.min_deviation
            && (self.std_dev() <= f64::EPSILON || self.score(delta) > self.config.n_sigma);
        if is_outlier {
            self.alarms += 1;
        } else {
            self.absorb(delta);
        }
        is_outlier
    }
}

/// A bank of per-state EWMA detectors, mirroring [`GadBank`](crate::gad::GadBank).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaBank {
    detectors: Vec<EwmaDetector>,
}

impl Default for EwmaBank {
    fn default() -> Self {
        Self::new(EwmaConfig::default())
    }
}

impl EwmaBank {
    /// Creates a bank with one detector per monitored state.
    pub fn new(config: EwmaConfig) -> Self {
        let detectors =
            StateField::ALL.into_iter().map(|field| EwmaDetector::new(field, config)).collect();
        Self { detectors }
    }

    /// Immutable access to the per-field detectors.
    pub fn detectors(&self) -> &[EwmaDetector] {
        &self.detectors
    }

    /// Observes the delta of a single field, returning `true` on alarm.
    pub fn observe_field(&mut self, field: StateField, delta: f64) -> bool {
        self.detectors[field.index()].observe(delta)
    }

    /// Observes a full preprocessed delta vector, returning the stages that
    /// raised at least one alarm.
    pub fn observe_all(&mut self, deltas: &[f64; MonitoredStates::DIM]) -> Vec<Stage> {
        let mut stages = Vec::new();
        for field in StateField::ALL {
            if self.observe_field(field, deltas[field.index()]) && !stages.contains(&field.stage())
            {
                stages.push(field.stage());
            }
        }
        stages
    }

    /// Maximum per-field anomaly score of a delta vector, usable as a scalar
    /// score for ROC analysis.
    pub fn score(&self, deltas: &[f64; MonitoredStates::DIM]) -> f64 {
        StateField::ALL
            .into_iter()
            .map(|field| self.detectors[field.index()].score(deltas[field.index()]))
            .fold(0.0, f64::max)
    }

    /// Seeds every detector's baseline from error-free telemetry.
    pub fn prime(&mut self, samples: &[[f64; MonitoredStates::DIM]]) {
        for sample in samples {
            for field in StateField::ALL {
                self.detectors[field.index()].prime(sample[field.index()]);
            }
        }
    }

    /// Total alarms raised per stage.
    pub fn alarms_for_stage(&self, stage: Stage) -> u64 {
        self.detectors.iter().filter(|d| d.field().stage() == stage).map(EwmaDetector::alarms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_delta(rng: &mut StdRng) -> f64 {
        (0..4).map(|_| rng.gen_range(-2.0..2.0)).sum()
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        let _ = EwmaDetector::new(
            StateField::CommandVx,
            EwmaConfig { alpha: 0.0, ..EwmaConfig::default() },
        );
    }

    #[test]
    fn no_alarms_during_warmup() {
        let mut detector = EwmaDetector::new(StateField::CommandVx, EwmaConfig::default());
        for _ in 0..10 {
            assert!(!detector.observe(10_000.0));
        }
    }

    #[test]
    fn detects_large_outliers_after_normal_training() {
        let mut detector = EwmaDetector::new(StateField::WaypointX, EwmaConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            assert!(!detector.observe(normal_delta(&mut rng)));
        }
        assert!(detector.observe(5_000.0));
        assert_eq!(detector.alarms(), 1);
        // The outlier was not absorbed.
        assert!(!detector.observe(normal_delta(&mut rng)));
    }

    #[test]
    fn baseline_tracks_regime_changes() {
        // A permanent shift of the delta regime should eventually stop
        // alarming because the EWMA forgets the old regime.
        let config = EwmaConfig { alpha: 0.2, min_deviation: 1.0, ..EwmaConfig::default() };
        let mut detector = EwmaDetector::new(StateField::CommandVy, config);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            detector.observe(normal_delta(&mut rng));
        }
        let before = detector.mean();
        // New regime: deltas around +10, close enough to the old baseline
        // that individual samples stay inside the `n_sigma` envelope and are
        // absorbed, letting the EWMA track the drift.
        let mut alarms_late = 0;
        for step in 0..400 {
            let value = 10.0 + normal_delta(&mut rng);
            let alarmed = detector.observe(value);
            if step > 300 && alarmed {
                alarms_late += 1;
            }
        }
        assert!(detector.mean() > before + 5.0, "EWMA mean should have drifted up");
        assert_eq!(alarms_late, 0, "after adaptation the new regime should look normal");
    }

    #[test]
    fn bank_reports_alarming_stages_and_scores() {
        let mut bank = EwmaBank::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut normal = [0.0; 13];
        for _ in 0..200 {
            for slot in normal.iter_mut() {
                *slot = normal_delta(&mut rng);
            }
            assert!(bank.observe_all(&normal).is_empty());
        }
        let clean_score = bank.score(&normal);
        let mut corrupted = normal;
        corrupted[StateField::CommandVz.index()] = -7_000.0;
        assert!(bank.score(&corrupted) > clean_score);
        let stages = bank.observe_all(&corrupted);
        assert_eq!(stages, vec![Stage::Control]);
        assert_eq!(bank.alarms_for_stage(Stage::Control), 1);
        assert_eq!(bank.alarms_for_stage(Stage::Planning), 0);
    }

    #[test]
    fn priming_enables_immediate_detection() {
        let mut bank = EwmaBank::default();
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<[f64; 13]> =
            (0..60).map(|_| std::array::from_fn(|_| normal_delta(&mut rng))).collect();
        bank.prime(&samples);
        assert!(bank.detectors()[0].samples() >= 60);
        let mut corrupted = [0.0; 13];
        corrupted[StateField::WaypointYaw.index()] = 9_000.0;
        assert_eq!(bank.observe_all(&corrupted), vec![Stage::Planning]);
    }
}
