//! `mavfi-detect` implements MAVFI's two low-overhead anomaly detection and
//! recovery schemes: Gaussian-based detection (GAD, per-state online range
//! detectors with per-stage recomputation) and autoencoder-based detection
//! (AAD, one 13-6-3-13 autoencoder over all monitored inter-kernel states
//! with control-stage recomputation), plus the shared data preprocessing and
//! the telemetry collection / training pipeline.
//!
//! # Examples
//!
//! ```
//! use mavfi_detect::prelude::*;
//! use mavfi_ppc::states::{MonitoredStates, StateField};
//!
//! // Collect error-free telemetry and build a Gaussian detector bank.
//! let mut telemetry = TelemetrySet::new();
//! for step in 0..100 {
//!     let mut states = MonitoredStates::default();
//!     states.set_field(StateField::CommandVx, 2.0 + 0.1 * (step as f64 * 0.3).sin());
//!     telemetry.record(&states);
//! }
//! let bank = telemetry.build_gad(CgadConfig::default());
//! let detector = DetectorTap::new(DetectionScheme::Gaussian(bank));
//! assert_eq!(detector.stats().total_alarms(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aad;
pub mod calibration;
pub mod detector_node;
pub mod ewma;
pub mod gad;
pub mod mahalanobis;
pub mod metrics;
pub mod preprocess;
pub mod static_range;
pub mod training;
pub mod welford;

pub use aad::{AadBatchScratch, AadConfig, AadDetector, AadScratch};
pub use calibration::{
    best_by_f1, evaluate_stream, roc_curve, score_stream, sweep_aad_threshold, sweep_ewma_alpha,
    sweep_gad_nsigma, AnomalyScorer, CorruptionProfile, LabeledStream, OperatingPoint,
    SyntheticAnomalyConfig,
};
pub use detector_node::{DetectionScheme, DetectorStats, DetectorTap};
pub use ewma::{EwmaBank, EwmaConfig, EwmaDetector};
pub use gad::{Cgad, CgadConfig, GadBank};
pub use mahalanobis::{MahalanobisConfig, MahalanobisDetector};
pub use metrics::{ConfusionMatrix, DetectionLatency, GroundTruth, RocCurve, RocPoint};
pub use preprocess::{magnitude_code, sign_exponent, Preprocessor};
pub use static_range::{FieldRange, StaticRangeBank, StaticRangeConfig};
pub use training::TelemetrySet;
pub use welford::Welford;

/// Commonly used items, suitable for glob import.
pub mod prelude {
    pub use crate::aad::{AadConfig, AadDetector, AadScratch};
    pub use crate::calibration::{
        best_by_f1, evaluate_stream, roc_curve, score_stream, sweep_aad_threshold,
        sweep_ewma_alpha, sweep_gad_nsigma, AnomalyScorer, CorruptionProfile, LabeledStream,
        OperatingPoint, SyntheticAnomalyConfig,
    };
    pub use crate::detector_node::{DetectionScheme, DetectorStats, DetectorTap};
    pub use crate::ewma::{EwmaBank, EwmaConfig, EwmaDetector};
    pub use crate::gad::{Cgad, CgadConfig, GadBank};
    pub use crate::mahalanobis::{MahalanobisConfig, MahalanobisDetector};
    pub use crate::metrics::{ConfusionMatrix, DetectionLatency, GroundTruth, RocCurve, RocPoint};
    pub use crate::preprocess::{magnitude_code, sign_exponent, Preprocessor};
    pub use crate::static_range::{FieldRange, StaticRangeBank, StaticRangeConfig};
    pub use crate::training::TelemetrySet;
    pub use crate::welford::Welford;
}
