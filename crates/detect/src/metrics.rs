//! Detection-quality metrics: confusion matrices, precision/recall/F1,
//! ROC curves and detection latency.
//!
//! The paper reports the end-to-end effect of the detectors (success rate,
//! flight time recovered); this module provides the stream-level detection
//! quality underneath those numbers, which is what the ablation benches and
//! the calibration sweeps report.

use serde::{Deserialize, Serialize};

/// Ground truth of one observed sample: whether a fault was actually present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroundTruth {
    /// The sample was produced by error-free execution.
    Clean,
    /// The sample carries an injected corruption.
    Corrupted,
}

/// A binary confusion matrix accumulated over a stream of detector verdicts.
///
/// # Examples
///
/// ```
/// use mavfi_detect::metrics::{ConfusionMatrix, GroundTruth};
///
/// let mut matrix = ConfusionMatrix::new();
/// matrix.record(GroundTruth::Corrupted, true);  // true positive
/// matrix.record(GroundTruth::Clean, false);     // true negative
/// matrix.record(GroundTruth::Clean, true);      // false positive
/// assert_eq!(matrix.true_positives, 1);
/// assert!((matrix.precision() - 0.5).abs() < 1e-12);
/// assert!((matrix.recall() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Corrupted samples the detector flagged.
    pub true_positives: u64,
    /// Clean samples the detector flagged.
    pub false_positives: u64,
    /// Clean samples the detector passed.
    pub true_negatives: u64,
    /// Corrupted samples the detector passed.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one verdict against its ground truth.
    pub fn record(&mut self, truth: GroundTruth, alarmed: bool) {
        match (truth, alarmed) {
            (GroundTruth::Corrupted, true) => self.true_positives += 1,
            (GroundTruth::Corrupted, false) => self.false_negatives += 1,
            (GroundTruth::Clean, true) => self.false_positives += 1,
            (GroundTruth::Clean, false) => self.true_negatives += 1,
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Number of samples whose ground truth is `Corrupted`.
    pub fn positives(&self) -> u64 {
        self.true_positives + self.false_negatives
    }

    /// Number of samples whose ground truth is `Clean`.
    pub fn negatives(&self) -> u64 {
        self.true_negatives + self.false_positives
    }

    /// Fraction of raised alarms that were genuine (`TP / (TP + FP)`), or 1
    /// when no alarm was ever raised.
    pub fn precision(&self) -> f64 {
        ratio(self.true_positives, self.true_positives + self.false_positives, 1.0)
    }

    /// Fraction of corruptions that were caught (`TP / (TP + FN)`), or 1 when
    /// no corruption was ever presented.
    pub fn recall(&self) -> f64 {
        ratio(self.true_positives, self.positives(), 1.0)
    }

    /// Fraction of clean samples that triggered a spurious alarm
    /// (`FP / (FP + TN)`), or 0 when no clean sample was ever presented.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.false_positives, self.negatives(), 0.0)
    }

    /// Fraction of all verdicts that were correct.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total(), 1.0)
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r <= f64::EPSILON {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

fn ratio(numerator: u64, denominator: u64, empty: f64) -> f64 {
    if denominator == 0 {
        empty
    } else {
        numerator as f64 / denominator as f64
    }
}

/// One (false-positive rate, true-positive rate) operating point of a
/// detector at a particular threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold that produced this point (alarms fire for
    /// `score > threshold`).
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub false_positive_rate: f64,
    /// True-positive rate (recall) at this threshold.
    pub true_positive_rate: f64,
}

/// A receiver-operating-characteristic curve built from scored samples.
///
/// Scores are any monotone anomaly score (Gaussian |z|, autoencoder
/// reconstruction error, Mahalanobis distance): higher means "more
/// anomalous".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the curve from `(score, ground truth)` pairs by sweeping the
    /// threshold over every distinct score.
    ///
    /// Returns an empty curve when `scored` is empty or contains only one
    /// class.
    pub fn from_scores(scored: &[(f64, GroundTruth)]) -> Self {
        let positives = scored.iter().filter(|(_, t)| *t == GroundTruth::Corrupted).count() as f64;
        let negatives = scored.len() as f64 - positives;
        if positives == 0.0 || negatives == 0.0 {
            return Self::default();
        }

        let mut sorted: Vec<(f64, GroundTruth)> =
            scored.iter().copied().filter(|(s, _)| s.is_finite()).collect();
        sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

        let mut points = Vec::with_capacity(sorted.len() + 2);
        // Threshold above every score: nothing alarms.
        points.push(RocPoint {
            threshold: f64::INFINITY,
            false_positive_rate: 0.0,
            true_positive_rate: 0.0,
        });
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut index = 0;
        while index < sorted.len() {
            let score = sorted[index].0;
            // Consume every sample tied at this score so the curve is a
            // function of the threshold, not of tie ordering.
            while index < sorted.len() && sorted[index].0 == score {
                match sorted[index].1 {
                    GroundTruth::Corrupted => tp += 1.0,
                    GroundTruth::Clean => fp += 1.0,
                }
                index += 1;
            }
            points.push(RocPoint {
                threshold: score,
                false_positive_rate: fp / negatives,
                true_positive_rate: tp / positives,
            });
        }
        Self { points }
    }

    /// The operating points, ordered from strictest to loosest threshold.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Returns `true` when the curve has no operating points (degenerate
    /// input).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Area under the curve by trapezoidal integration; 0.5 is chance level,
    /// 1.0 is a perfect detector.  Returns 0 for an empty curve.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|pair| {
                let width = pair[1].false_positive_rate - pair[0].false_positive_rate;
                let height = 0.5 * (pair[0].true_positive_rate + pair[1].true_positive_rate);
                width * height
            })
            .sum()
    }

    /// The true-positive rate achievable while keeping the false-positive
    /// rate at or below `max_fpr`.  Returns 0 for an empty curve.
    pub fn tpr_at_fpr(&self, max_fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|point| point.false_positive_rate <= max_fpr)
            .map(|point| point.true_positive_rate)
            .fold(0.0, f64::max)
    }
}

/// Distribution of how many samples elapsed between a corruption appearing
/// and the detector raising its alarm.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionLatency {
    latencies: Vec<u64>,
    missed: u64,
}

impl DetectionLatency {
    /// Creates an empty latency record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detection `samples` observations after the corruption.
    pub fn record_detected(&mut self, samples: u64) {
        self.latencies.push(samples);
    }

    /// Records a corruption the detector never flagged.
    pub fn record_missed(&mut self) {
        self.missed += 1;
    }

    /// Number of detected corruptions.
    pub fn detected(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// Number of corruptions that were never flagged.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Fraction of corruptions that were eventually detected.
    pub fn coverage(&self) -> f64 {
        ratio(self.detected(), self.detected() + self.missed, 1.0)
    }

    /// Mean detection latency in samples, or `None` when nothing was
    /// detected.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64)
        }
    }

    /// Worst-case detection latency in samples, or `None` when nothing was
    /// detected.
    pub fn max_latency(&self) -> Option<u64> {
        self.latencies.iter().copied().max()
    }

    /// Fraction of detections that happened on the very sample carrying the
    /// corruption (latency 0), or `None` when nothing was detected.
    pub fn immediate_fraction(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            let immediate = self.latencies.iter().filter(|&&l| l == 0).count();
            Some(immediate as f64 / self.latencies.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_rates() {
        let mut matrix = ConfusionMatrix::new();
        for _ in 0..8 {
            matrix.record(GroundTruth::Corrupted, true);
        }
        for _ in 0..2 {
            matrix.record(GroundTruth::Corrupted, false);
        }
        for _ in 0..85 {
            matrix.record(GroundTruth::Clean, false);
        }
        for _ in 0..5 {
            matrix.record(GroundTruth::Clean, true);
        }
        assert_eq!(matrix.total(), 100);
        assert_eq!(matrix.positives(), 10);
        assert_eq!(matrix.negatives(), 90);
        assert!((matrix.recall() - 0.8).abs() < 1e-12);
        assert!((matrix.precision() - 8.0 / 13.0).abs() < 1e-12);
        assert!((matrix.false_positive_rate() - 5.0 / 90.0).abs() < 1e-12);
        assert!((matrix.accuracy() - 0.93).abs() < 1e-12);
        assert!(matrix.f1() > 0.0 && matrix.f1() < 1.0);
    }

    #[test]
    fn empty_matrix_uses_benign_defaults() {
        let matrix = ConfusionMatrix::new();
        assert_eq!(matrix.precision(), 1.0);
        assert_eq!(matrix.recall(), 1.0);
        assert_eq!(matrix.false_positive_rate(), 0.0);
        assert_eq!(matrix.accuracy(), 1.0);
    }

    #[test]
    fn f1_is_zero_when_nothing_is_caught() {
        let mut matrix = ConfusionMatrix::new();
        matrix.record(GroundTruth::Corrupted, false);
        matrix.record(GroundTruth::Clean, true);
        assert_eq!(matrix.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.record(GroundTruth::Corrupted, true);
        let mut b = ConfusionMatrix::new();
        b.record(GroundTruth::Clean, false);
        b.record(GroundTruth::Clean, true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.false_positives, 1);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scored: Vec<(f64, GroundTruth)> = (0..50)
            .map(|i| (i as f64, GroundTruth::Clean))
            .chain((0..50).map(|i| (100.0 + i as f64, GroundTruth::Corrupted)))
            .collect();
        let curve = RocCurve::from_scores(&scored);
        assert!(!curve.is_empty());
        assert!((curve.auc() - 1.0).abs() < 1e-12);
        assert_eq!(curve.tpr_at_fpr(0.0), 1.0);
    }

    #[test]
    fn random_scores_give_auc_near_half() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let scored: Vec<(f64, GroundTruth)> = (0..4000)
            .map(|i| {
                let truth = if i % 2 == 0 { GroundTruth::Clean } else { GroundTruth::Corrupted };
                (rng.gen_range(0.0..1.0), truth)
            })
            .collect();
        let auc = RocCurve::from_scores(&scored).auc();
        assert!((auc - 0.5).abs() < 0.05, "auc of random scores was {auc}");
    }

    #[test]
    fn degenerate_score_sets_produce_empty_curves() {
        assert!(RocCurve::from_scores(&[]).is_empty());
        let only_clean = vec![(1.0, GroundTruth::Clean), (2.0, GroundTruth::Clean)];
        assert!(RocCurve::from_scores(&only_clean).is_empty());
        assert_eq!(RocCurve::from_scores(&only_clean).auc(), 0.0);
    }

    #[test]
    fn tied_scores_do_not_depend_on_order() {
        let a = vec![
            (1.0, GroundTruth::Clean),
            (1.0, GroundTruth::Corrupted),
            (2.0, GroundTruth::Corrupted),
            (0.5, GroundTruth::Clean),
        ];
        let mut b = a.clone();
        b.swap(0, 1);
        assert_eq!(RocCurve::from_scores(&a).auc(), RocCurve::from_scores(&b).auc());
    }

    #[test]
    fn latency_statistics() {
        let mut latency = DetectionLatency::new();
        latency.record_detected(0);
        latency.record_detected(0);
        latency.record_detected(4);
        latency.record_missed();
        assert_eq!(latency.detected(), 3);
        assert_eq!(latency.missed(), 1);
        assert!((latency.coverage() - 0.75).abs() < 1e-12);
        assert!((latency.mean_latency().unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(latency.max_latency(), Some(4));
        assert!((latency.immediate_fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_latency_record() {
        let latency = DetectionLatency::new();
        assert_eq!(latency.mean_latency(), None);
        assert_eq!(latency.max_latency(), None);
        assert_eq!(latency.immediate_fraction(), None);
        assert_eq!(latency.coverage(), 1.0);
    }
}
