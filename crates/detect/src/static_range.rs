//! Static range-restriction anomaly detection, the "Ranger-style" baseline
//! the paper cites for DNN accelerators (its reference \[8\]).
//!
//! Each monitored state's preprocessed delta gets a fixed `[low, high]`
//! envelope calibrated once from error-free training telemetry; anything
//! outside the envelope alarms.  There is no online adaptation, which keeps
//! the detector trivially cheap but makes it blind to corruptions that stay
//! inside the training envelope — exactly the deficiency that motivates the
//! paper's Gaussian and autoencoder schemes.

use mavfi_ppc::states::{MonitoredStates, Stage, StateField};
use serde::{Deserialize, Serialize};

/// Configuration of the static range detector bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticRangeConfig {
    /// Multiplier applied to each field's observed half-range when forming
    /// its envelope; 1.0 uses the training extrema verbatim, larger values
    /// trade recall for a lower false-positive rate.
    pub margin: f64,
    /// Minimum half-width of every envelope in code units, protecting fields
    /// that were constant during training from alarming on any movement.
    pub min_half_width: f64,
}

impl Default for StaticRangeConfig {
    fn default() -> Self {
        Self { margin: 1.5, min_half_width: 48.0 }
    }
}

/// Calibrated envelope of one monitored state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldRange {
    /// The monitored field.
    pub field: StateField,
    /// Lower envelope bound (inclusive).
    pub low: f64,
    /// Upper envelope bound (inclusive).
    pub high: f64,
}

impl FieldRange {
    /// Returns `true` when `delta` lies outside the envelope.
    pub fn is_outlier(&self, delta: f64) -> bool {
        delta.is_finite() && (delta < self.low || delta > self.high)
    }

    /// Distance of `delta` outside the envelope, in envelope half-widths;
    /// 0 for in-range values.  Usable as a scalar anomaly score.
    pub fn score(&self, delta: f64) -> f64 {
        if !delta.is_finite() {
            return 0.0;
        }
        let half_width = 0.5 * (self.high - self.low);
        let center = 0.5 * (self.high + self.low);
        if half_width <= f64::EPSILON {
            return if delta == center { 0.0 } else { f64::MAX };
        }
        ((delta - center).abs() / half_width - 1.0).max(0.0)
    }
}

/// A bank of static per-state range detectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticRangeBank {
    ranges: Vec<FieldRange>,
    alarms: Vec<u64>,
}

impl StaticRangeBank {
    /// Calibrates the envelopes from error-free preprocessed telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn calibrate(samples: &[[f64; MonitoredStates::DIM]], config: StaticRangeConfig) -> Self {
        assert!(!samples.is_empty(), "range calibration requires error-free telemetry");
        let ranges = StateField::ALL
            .into_iter()
            .map(|field| {
                let index = field.index();
                let mut low = f64::INFINITY;
                let mut high = f64::NEG_INFINITY;
                for sample in samples {
                    let value = sample[index];
                    if value.is_finite() {
                        low = low.min(value);
                        high = high.max(value);
                    }
                }
                if !low.is_finite() || !high.is_finite() {
                    low = 0.0;
                    high = 0.0;
                }
                let center = 0.5 * (low + high);
                let half_width = (0.5 * (high - low) * config.margin).max(config.min_half_width);
                FieldRange { field, low: center - half_width, high: center + half_width }
            })
            .collect();
        Self { ranges, alarms: vec![0; StateField::ALL.len()] }
    }

    /// The calibrated envelopes.
    pub fn ranges(&self) -> &[FieldRange] {
        &self.ranges
    }

    /// Total alarms raised so far.
    pub fn total_alarms(&self) -> u64 {
        self.alarms.iter().sum()
    }

    /// Alarms raised for states produced by `stage`.
    pub fn alarms_for_stage(&self, stage: Stage) -> u64 {
        StateField::ALL
            .into_iter()
            .filter(|field| field.stage() == stage)
            .map(|field| self.alarms[field.index()])
            .sum()
    }

    /// Observes the delta of a single field, returning `true` on alarm.
    pub fn observe_field(&mut self, field: StateField, delta: f64) -> bool {
        let outlier = self.ranges[field.index()].is_outlier(delta);
        if outlier {
            self.alarms[field.index()] += 1;
        }
        outlier
    }

    /// Observes a full preprocessed delta vector, returning the stages that
    /// raised at least one alarm.
    pub fn observe_all(&mut self, deltas: &[f64; MonitoredStates::DIM]) -> Vec<Stage> {
        let mut stages = Vec::new();
        for field in StateField::ALL {
            if self.observe_field(field, deltas[field.index()]) && !stages.contains(&field.stage())
            {
                stages.push(field.stage());
            }
        }
        stages
    }

    /// Maximum per-field envelope-excess score of a delta vector.
    pub fn score(&self, deltas: &[f64; MonitoredStates::DIM]) -> f64 {
        StateField::ALL
            .into_iter()
            .map(|field| self.ranges[field.index()].score(deltas[field.index()]))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_samples(count: usize, seed: u64) -> Vec<[f64; 13]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| std::array::from_fn(|_| rng.gen_range(-8.0..8.0))).collect()
    }

    #[test]
    #[should_panic(expected = "error-free telemetry")]
    fn empty_calibration_panics() {
        let _ = StaticRangeBank::calibrate(&[], StaticRangeConfig::default());
    }

    #[test]
    fn in_range_values_pass_and_excursions_alarm() {
        let mut bank =
            StaticRangeBank::calibrate(&training_samples(500, 1), StaticRangeConfig::default());
        let clean: [f64; 13] = [1.0; 13];
        assert!(bank.observe_all(&clean).is_empty());
        assert_eq!(bank.score(&clean), 0.0);

        let mut corrupted = clean;
        corrupted[StateField::WaypointX.index()] = 4_000.0;
        assert!(bank.score(&corrupted) > 0.0);
        assert_eq!(bank.observe_all(&corrupted), vec![Stage::Planning]);
        assert_eq!(bank.alarms_for_stage(Stage::Planning), 1);
        assert_eq!(bank.total_alarms(), 1);
    }

    #[test]
    fn corruption_inside_the_training_envelope_is_missed() {
        // The structural weakness of static ranges: a corrupted value that
        // stays inside the envelope never alarms.
        let mut bank =
            StaticRangeBank::calibrate(&training_samples(500, 2), StaticRangeConfig::default());
        let mut sneaky = [0.0; 13];
        sneaky[StateField::CommandVx.index()] = 7.0; // inside [-8, 8] * margin
        assert!(bank.observe_all(&sneaky).is_empty());
    }

    #[test]
    fn constant_training_fields_get_a_minimum_envelope() {
        let samples = vec![[0.0; 13]; 50];
        let bank = StaticRangeBank::calibrate(&samples, StaticRangeConfig::default());
        for range in bank.ranges() {
            assert!(range.high - range.low >= 2.0 * StaticRangeConfig::default().min_half_width);
        }
    }

    #[test]
    fn margin_widens_the_envelope() {
        let samples = training_samples(200, 3);
        let tight = StaticRangeBank::calibrate(
            &samples,
            StaticRangeConfig { margin: 1.0, min_half_width: 0.0 },
        );
        let loose = StaticRangeBank::calibrate(
            &samples,
            StaticRangeConfig { margin: 3.0, min_half_width: 0.0 },
        );
        for (t, l) in tight.ranges().iter().zip(loose.ranges()) {
            assert!(l.high - l.low > t.high - t.low);
        }
    }

    #[test]
    fn non_finite_deltas_never_alarm() {
        let mut bank =
            StaticRangeBank::calibrate(&training_samples(100, 4), StaticRangeConfig::default());
        assert!(!bank.observe_field(StateField::CommandVx, f64::NAN));
        assert!(!bank.observe_field(StateField::CommandVx, f64::INFINITY));
        assert_eq!(bank.total_alarms(), 0);
    }
}
