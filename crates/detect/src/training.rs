//! Collection of error-free telemetry and detector training (paper §V,
//! "Training Environments").

use mavfi_nn::train::{TrainConfig, TrainReport};
use mavfi_ppc::states::MonitoredStates;
use serde::{Deserialize, Serialize};

use crate::aad::{AadConfig, AadDetector};
use crate::gad::{CgadConfig, GadBank};
use crate::preprocess::Preprocessor;

/// A set of preprocessed error-free telemetry samples collected from golden
/// runs in randomized training environments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySet {
    preprocessor: Preprocessor,
    samples: Vec<[f64; MonitoredStates::DIM]>,
}

impl TelemetrySet {
    /// Creates an empty telemetry set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one monitored-state snapshot, preprocessing it relative to
    /// the previous one.
    pub fn record(&mut self, states: &MonitoredStates) {
        let deltas = self.preprocessor.process(states);
        self.samples.push(deltas);
    }

    /// Marks a mission boundary: the next recorded snapshot starts a fresh
    /// delta baseline, so the jump between missions does not pollute the
    /// training data.
    pub fn end_mission(&mut self) {
        self.preprocessor.reset();
    }

    /// The collected preprocessed samples.
    pub fn samples(&self) -> &[[f64; MonitoredStates::DIM]] {
        &self.samples
    }

    /// Number of collected samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends the samples of another telemetry set.
    pub fn merge(&mut self, other: TelemetrySet) {
        self.samples.extend(other.samples);
    }

    /// Trains an autoencoder detector on this telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn train_aad(&self, config: AadConfig, train_config: &TrainConfig) -> (AadDetector, TrainReport) {
        AadDetector::train(&self.samples, config, train_config)
    }

    /// Builds a Gaussian detector bank primed with this telemetry.
    pub fn build_gad(&self, config: CgadConfig) -> GadBank {
        let mut bank = GadBank::new(config);
        bank.prime(&self.samples);
        bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_ppc::states::StateField;

    fn synthetic_states(step: usize) -> MonitoredStates {
        let mut states = MonitoredStates::default();
        let t = step as f64 * 0.1;
        states.set_field(StateField::WaypointX, 10.0 + t);
        states.set_field(StateField::WaypointY, -5.0 + 0.5 * t);
        states.set_field(StateField::CommandVx, 2.0 * (t * 0.3).sin());
        states.set_field(StateField::CommandVy, 1.5 * (t * 0.3).cos());
        states.set_field(StateField::TimeToCollision, 3.0 + (t * 0.2).sin());
        states
    }

    #[test]
    fn recording_builds_delta_samples() {
        let mut telemetry = TelemetrySet::new();
        for step in 0..50 {
            telemetry.record(&synthetic_states(step));
        }
        assert_eq!(telemetry.len(), 50);
        assert!(!telemetry.is_empty());
        // Deltas of smooth telemetry are small.
        for sample in telemetry.samples().iter().skip(1) {
            assert!(sample.iter().all(|d| d.abs() < 100.0));
        }
    }

    #[test]
    fn end_mission_resets_the_baseline() {
        let mut telemetry = TelemetrySet::new();
        telemetry.record(&synthetic_states(0));
        telemetry.end_mission();
        // A wildly different first sample of the next mission yields zero
        // deltas rather than a spurious jump.
        let mut far_away = MonitoredStates::default();
        far_away.set_field(StateField::WaypointX, 500.0);
        telemetry.record(&far_away);
        assert_eq!(telemetry.samples()[1], [0.0; 13]);
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = TelemetrySet::new();
        a.record(&synthetic_states(0));
        let mut b = TelemetrySet::new();
        b.record(&synthetic_states(1));
        b.record(&synthetic_states(2));
        a.merge(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn detectors_can_be_built_from_telemetry() {
        let mut telemetry = TelemetrySet::new();
        for step in 0..120 {
            telemetry.record(&synthetic_states(step));
        }
        let gad = telemetry.build_gad(CgadConfig::default());
        assert!(gad.detectors()[0].samples() >= 100);

        let train_config = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let (aad, report) = telemetry.train_aad(AadConfig::default(), &train_config);
        assert!(aad.threshold() > 0.0);
        assert_eq!(report.epoch_losses.len(), 3);
    }
}
