//! Collection of error-free telemetry and detector training (paper §V,
//! "Training Environments").

use mavfi_nn::train::{TrainConfig, TrainReport};
use mavfi_ppc::states::MonitoredStates;
use serde::{Deserialize, Serialize};

use crate::aad::{AadConfig, AadDetector};
use crate::gad::{CgadConfig, GadBank};
use crate::preprocess::Preprocessor;

/// A set of preprocessed error-free telemetry samples collected from golden
/// runs in randomized training environments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySet {
    preprocessor: Preprocessor,
    samples: Vec<[f64; MonitoredStates::DIM]>,
}

impl TelemetrySet {
    /// Creates an empty telemetry set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one monitored-state snapshot, preprocessing it relative to
    /// the previous one.
    pub fn record(&mut self, states: &MonitoredStates) {
        let deltas = self.preprocessor.process(states);
        self.samples.push(deltas);
    }

    /// Marks a mission boundary: the next recorded snapshot starts a fresh
    /// delta baseline, so the jump between missions does not pollute the
    /// training data.
    pub fn end_mission(&mut self) {
        self.preprocessor.reset();
    }

    /// The collected preprocessed samples.
    pub fn samples(&self) -> &[[f64; MonitoredStates::DIM]] {
        &self.samples
    }

    /// Number of collected samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends the samples of another telemetry set.
    pub fn merge(&mut self, other: TelemetrySet) {
        self.samples.extend(other.samples);
    }

    /// Trains an autoencoder detector on this telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn train_aad(
        &self,
        config: AadConfig,
        train_config: &TrainConfig,
    ) -> (AadDetector, TrainReport) {
        AadDetector::train(&self.samples, config, train_config)
    }

    /// Builds a Gaussian detector bank primed with this telemetry.
    pub fn build_gad(&self, config: CgadConfig) -> GadBank {
        let mut bank = GadBank::new(config);
        bank.prime(&self.samples);
        bank
    }
}

/// A stable 64-bit fingerprint of a detector-training configuration, used to
/// key caches of trained detector banks.
///
/// Training is fully deterministic given its configuration (environment
/// kind, mission count, seeds, time budget, epochs), so two configurations
/// with the same fingerprint produce identical detectors and can share one
/// trained bank.  The fingerprint is an FNV-1a hash fed field by field; it
/// is stable across runs and platforms, unlike `std`'s `DefaultHasher`.
///
/// # Examples
///
/// ```
/// use mavfi_detect::training::TrainingFingerprint;
///
/// let a = TrainingFingerprint::new().push_str("Randomized").push(4).push_f64(60.0).finish();
/// let b = TrainingFingerprint::new().push_str("Randomized").push(4).push_f64(60.0).finish();
/// let c = TrainingFingerprint::new().push_str("Randomized").push(5).push_f64(60.0).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct TrainingFingerprint(u64);

impl TrainingFingerprint {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self(Self::FNV_OFFSET)
    }

    /// Folds one byte slice into the fingerprint (length-prefixed, so
    /// `"ab" + "c"` and `"a" + "bc"` fingerprint differently).
    pub fn push_bytes(mut self, bytes: &[u8]) -> Self {
        self = self.push(bytes.len() as u64);
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::FNV_PRIME);
        }
        self
    }

    /// Folds a string into the fingerprint.
    pub fn push_str(self, value: &str) -> Self {
        self.push_bytes(value.as_bytes())
    }

    /// Folds one 64-bit word into the fingerprint.
    pub fn push(mut self, word: u64) -> Self {
        for byte in word.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::FNV_PRIME);
        }
        self
    }

    /// Folds a float into the fingerprint by exact bit pattern (`0.0` and
    /// `-0.0` are distinct, as are NaN payloads — training configs should
    /// simply not use NaN).
    pub fn push_f64(self, value: f64) -> Self {
        self.push(value.to_bits())
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for TrainingFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_ppc::states::StateField;

    fn synthetic_states(step: usize) -> MonitoredStates {
        let mut states = MonitoredStates::default();
        let t = step as f64 * 0.1;
        states.set_field(StateField::WaypointX, 10.0 + t);
        states.set_field(StateField::WaypointY, -5.0 + 0.5 * t);
        states.set_field(StateField::CommandVx, 2.0 * (t * 0.3).sin());
        states.set_field(StateField::CommandVy, 1.5 * (t * 0.3).cos());
        states.set_field(StateField::TimeToCollision, 3.0 + (t * 0.2).sin());
        states
    }

    #[test]
    fn recording_builds_delta_samples() {
        let mut telemetry = TelemetrySet::new();
        for step in 0..50 {
            telemetry.record(&synthetic_states(step));
        }
        assert_eq!(telemetry.len(), 50);
        assert!(!telemetry.is_empty());
        // Deltas of smooth telemetry are small.
        for sample in telemetry.samples().iter().skip(1) {
            assert!(sample.iter().all(|d| d.abs() < 100.0));
        }
    }

    #[test]
    fn end_mission_resets_the_baseline() {
        let mut telemetry = TelemetrySet::new();
        telemetry.record(&synthetic_states(0));
        telemetry.end_mission();
        // A wildly different first sample of the next mission yields zero
        // deltas rather than a spurious jump.
        let mut far_away = MonitoredStates::default();
        far_away.set_field(StateField::WaypointX, 500.0);
        telemetry.record(&far_away);
        assert_eq!(telemetry.samples()[1], [0.0; 13]);
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = TelemetrySet::new();
        a.record(&synthetic_states(0));
        let mut b = TelemetrySet::new();
        b.record(&synthetic_states(1));
        b.record(&synthetic_states(2));
        a.merge(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn fingerprints_are_stable_and_field_sensitive() {
        let base = || TrainingFingerprint::new().push_str("Randomized").push(7).push_f64(30.0);
        assert_eq!(base().finish(), base().finish());
        assert_ne!(base().finish(), base().push(0).finish());
        assert_ne!(
            TrainingFingerprint::new().push_str("ab").push_str("c").finish(),
            TrainingFingerprint::new().push_str("a").push_str("bc").finish(),
            "length prefixing must prevent concatenation collisions"
        );
        assert_ne!(
            TrainingFingerprint::new().push_f64(0.0).finish(),
            TrainingFingerprint::new().push_f64(-0.0).finish(),
        );
    }

    #[test]
    fn detectors_can_be_built_from_telemetry() {
        let mut telemetry = TelemetrySet::new();
        for step in 0..120 {
            telemetry.record(&synthetic_states(step));
        }
        let gad = telemetry.build_gad(CgadConfig::default());
        assert!(gad.detectors()[0].samples() >= 100);

        let train_config = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let (aad, report) = telemetry.train_aad(AadConfig::default(), &train_config);
        assert!(aad.threshold() > 0.0);
        assert_eq!(report.epoch_losses.len(), 3);
    }
}
