//! The anomaly-detection-and-recovery node, attached to the pipeline as a
//! [`StageTap`] exactly like the paper's ROS detection node subscribes to
//! the inter-kernel topics.

use mavfi_ppc::perception::occupancy::OccupancyGrid;
use mavfi_ppc::states::{
    CollisionEstimate, MonitoredStates, PointCloud, Stage, StateField, Trajectory,
};
use mavfi_ppc::tap::{StageTap, TapAction};
use mavfi_sim::vehicle::FlightCommand;
use serde::{Deserialize, Serialize};

use crate::aad::{AadDetector, AadScratch};
use crate::gad::GadBank;
use crate::preprocess::magnitude_code;

/// Which detection technique the node runs.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectionScheme {
    /// Gaussian-based detection: per-state range detectors, per-stage
    /// recomputation on alarm (§IV-C).
    Gaussian(GadBank),
    /// Autoencoder-based detection: one model over all states, corrupted
    /// states abandoned in favour of the last good value, control-stage
    /// recomputation on alarm (§IV-D).
    Autoencoder(AadDetector),
}

impl DetectionScheme {
    /// Short label used in reports ("Gaussian" / "Autoencoder").
    pub fn label(&self) -> &'static str {
        match self {
            Self::Gaussian(_) => "Gaussian",
            Self::Autoencoder(_) => "Autoencoder",
        }
    }
}

/// Counters describing the detector's activity during one mission.
///
/// Per-stage counters are fixed arrays indexed by [`Stage::index`] — no
/// hashing on the per-tick path, deterministic iteration order for free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Number of pipeline ticks observed.
    pub ticks: u64,
    alarms: [u64; Stage::COUNT],
    recomputations: [u64; Stage::COUNT],
    /// Corrupted states abandoned in place (restored to the last good
    /// value) without a recomputation request.
    pub abandonments: u64,
}

impl DetectorStats {
    fn count_alarm(&mut self, stage: Stage) {
        self.alarms[stage.index()] += 1;
    }

    fn count_recompute(&mut self, stage: Stage) {
        self.recomputations[stage.index()] += 1;
    }

    /// Alarms raised against states of `stage`.
    pub fn alarms_of(&self, stage: Stage) -> u64 {
        self.alarms[stage.index()]
    }

    /// Recomputations requested for `stage`.
    pub fn recomputations_of(&self, stage: Stage) -> u64 {
        self.recomputations[stage.index()]
    }

    /// Total alarms across stages.
    pub fn total_alarms(&self) -> u64 {
        self.alarms.iter().sum()
    }

    /// Total recomputation requests across stages.
    pub fn total_recomputations(&self) -> u64 {
        self.recomputations.iter().sum()
    }
}

/// The detection-and-recovery tap.
///
/// For the Gaussian scheme, an out-of-range state raises an alarm and
/// requests recomputation of the producing stage.  For the autoencoder
/// scheme, the reconstruction error of the 13-dimensional delta vector is
/// checked as each stage's states arrive; anomalous perception and planning
/// states are *abandoned* (replaced by the last good value, emulating the
/// paper's "the corrupted way-point will be abandoned"), and an anomaly at
/// the control stage requests the cheap control recomputation.
#[derive(Debug, Clone)]
pub struct DetectorTap {
    scheme: DetectionScheme,
    previous_codes: [Option<i16>; MonitoredStates::DIM],
    current: MonitoredStates,
    last_good: MonitoredStates,
    stats: DetectorStats,
    // Reusable buffers for the per-tick AAD score (no semantic state, so
    // excluded from the manual PartialEq below).
    scratch: AadScratch,
}

impl PartialEq for DetectorTap {
    fn eq(&self, other: &Self) -> bool {
        self.scheme == other.scheme
            && self.previous_codes == other.previous_codes
            && self.current == other.current
            && self.last_good == other.last_good
            && self.stats == other.stats
    }
}

impl DetectorTap {
    /// Creates a detector tap around a detection scheme.
    pub fn new(scheme: DetectionScheme) -> Self {
        Self {
            scheme,
            previous_codes: [None; MonitoredStates::DIM],
            current: MonitoredStates::default(),
            last_good: MonitoredStates::default(),
            stats: DetectorStats::default(),
            scratch: AadScratch::new(),
        }
    }

    /// The detection scheme in use.
    pub fn scheme(&self) -> &DetectionScheme {
        &self.scheme
    }

    /// Activity counters.
    pub fn stats(&self) -> &DetectorStats {
        &self.stats
    }

    fn squash(value: f64) -> f64 {
        if value.is_finite() {
            value
        } else {
            value.signum() * 1.0e6
        }
    }

    fn code_of(&self, field: StateField) -> i16 {
        magnitude_code(Self::squash(self.current.field(field)))
    }

    fn commit_fields(&mut self, stage: Stage) {
        for field in StateField::ALL {
            if field.stage() == stage {
                self.previous_codes[field.index()] = Some(self.code_of(field));
            }
        }
    }

    /// Returns `true` when every field of `stage` already has a baseline;
    /// alarms are suppressed until then so the very first observation of a
    /// stage cannot trip the detector.
    fn stage_has_baseline(&self, stage: Stage) -> bool {
        StateField::ALL
            .into_iter()
            .filter(|field| field.stage() == stage)
            .all(|field| self.previous_codes[field.index()].is_some())
    }

    /// The 13-dimensional AAD input: per-field magnitude-code deltas against
    /// the previous committed baseline (`0.0` for fields with no baseline
    /// yet), in [`StateField::ALL`] order.
    fn aad_deltas(&self) -> [f64; MonitoredStates::DIM] {
        std::array::from_fn(|i| {
            let field = StateField::ALL[i];
            match self.previous_codes[field.index()] {
                Some(previous) => {
                    f64::from(magnitude_code(Self::squash(self.current.field(field))))
                        - f64::from(previous)
                }
                None => 0.0,
            }
        })
    }

    /// Handles one stage's worth of freshly observed states.  Returns the
    /// tap action and whether the corrupted value should be abandoned.
    ///
    /// `primed` is a pre-computed AAD anomaly score for the current delta
    /// vector (ignored by the Gaussian scheme): the batched campaign driver
    /// scores whole batches with one matrix-matrix pass and feeds each tap
    /// its own score here, which takes exactly the path the sequential
    /// `primed == None` scoring takes after the score exists — decisions,
    /// counters and state updates are shared code, so the two modes cannot
    /// drift apart.
    ///
    /// Runs every pipeline tick for every stage, so it is allocation-free:
    /// fields are iterated in place and the AAD score goes through the tap's
    /// reusable scratch buffers.
    fn evaluate_stage(&mut self, stage: Stage, primed: Option<f64>) -> (TapAction, bool) {
        let warmed = self.stage_has_baseline(stage);
        // Resolve the AAD score before the scheme is borrowed mutably:
        // either the batch driver primed it, or score the deltas now.
        let aad_score = match &self.scheme {
            DetectionScheme::Gaussian(_) => None,
            DetectionScheme::Autoencoder(detector) => Some(match primed {
                Some(score) => score,
                None => {
                    let deltas = self.aad_deltas();
                    detector.score_with(&deltas, &mut self.scratch)
                }
            }),
        };
        match &mut self.scheme {
            DetectionScheme::Gaussian(bank) => {
                let mut alarmed = false;
                for field in StateField::ALL {
                    if field.stage() != stage {
                        continue;
                    }
                    let delta = match self.previous_codes[field.index()] {
                        Some(previous) => {
                            f64::from(magnitude_code(Self::squash(self.current.field(field))))
                                - f64::from(previous)
                        }
                        None => 0.0,
                    };
                    if bank.observe_field(field, delta) && warmed {
                        alarmed = true;
                    }
                }
                if alarmed {
                    self.stats.count_alarm(stage);
                    self.stats.count_recompute(stage);
                    // Do not absorb the corrupted value into the baseline.
                    (TapAction::Recompute, false)
                } else {
                    self.commit_fields(stage);
                    (TapAction::Continue, false)
                }
            }
            DetectionScheme::Autoencoder(detector) => {
                let score = aad_score.expect("resolved for the autoencoder scheme above");
                if detector.record_score(score) && warmed {
                    self.stats.count_alarm(stage);
                    if stage == Stage::Control {
                        self.stats.count_recompute(Stage::Control);
                        (TapAction::Recompute, false)
                    } else {
                        self.stats.abandonments += 1;
                        (TapAction::Continue, true)
                    }
                } else {
                    self.commit_fields(stage);
                    (TapAction::Continue, false)
                }
            }
        }
    }

    /// Shared body of [`StageTap::after_perception`] and
    /// [`DetectorTap::finish_perception`].
    fn perception_verdict(
        &mut self,
        estimate: &mut CollisionEstimate,
        primed: Option<f64>,
    ) -> TapAction {
        self.current.collision = *estimate;
        let (action, abandon) = self.evaluate_stage(Stage::Perception, primed);
        if abandon {
            *estimate = self.last_good.collision;
            self.current.collision = self.last_good.collision;
        } else if action == TapAction::Continue {
            self.last_good.collision = *estimate;
        }
        action
    }

    /// Shared body of [`StageTap::after_planning`] and
    /// [`DetectorTap::finish_planning`].
    fn planning_verdict(
        &mut self,
        trajectory: &mut Trajectory,
        active_index: usize,
        primed: Option<f64>,
    ) -> TapAction {
        if trajectory.is_empty() {
            return TapAction::Continue;
        }
        let index = active_index.min(trajectory.len() - 1);
        self.current.waypoint = trajectory.waypoints[index];
        let (action, abandon) = self.evaluate_stage(Stage::Planning, primed);
        if abandon {
            trajectory.waypoints[index] = self.last_good.waypoint;
            self.current.waypoint = self.last_good.waypoint;
        } else if action == TapAction::Continue {
            self.last_good.waypoint = trajectory.waypoints[index];
        }
        action
    }

    /// Shared body of [`StageTap::after_control`] and
    /// [`DetectorTap::finish_control`].
    fn control_verdict(&mut self, command: &mut FlightCommand, primed: Option<f64>) -> TapAction {
        self.current.command = *command;
        let (action, abandon) = self.evaluate_stage(Stage::Control, primed);
        if abandon {
            *command = self.last_good.command;
            self.current.command = self.last_good.command;
        } else if action == TapAction::Continue {
            self.last_good.command = *command;
        }
        action
    }

    /// Whether this tap runs the autoencoder scheme, i.e. participates in
    /// batched anomaly scoring.
    pub fn is_autoencoder(&self) -> bool {
        matches!(self.scheme, DetectionScheme::Autoencoder(_))
    }

    /// First half of a batched [`StageTap::after_perception`]: registers the
    /// freshly observed collision estimate and returns the AAD delta vector
    /// to score, or `None` when this tap takes no part in batched scoring
    /// (Gaussian scheme — drive it through the plain `after_*` hooks).
    ///
    /// A batch driver scores the collected vectors of all its taps in one
    /// matrix-matrix pass (`AadDetector::score_batch_with` on a detector
    /// with the same trained weights) and hands each tap its score via
    /// [`DetectorTap::finish_perception`].  `begin` + `finish` is
    /// bit-identical to the sequential hook: both run the same verdict body,
    /// one with the score primed, one scoring inline.
    pub fn begin_perception(
        &mut self,
        estimate: &CollisionEstimate,
    ) -> Option<[f64; MonitoredStates::DIM]> {
        if !self.is_autoencoder() {
            return None;
        }
        self.current.collision = *estimate;
        Some(self.aad_deltas())
    }

    /// Second half of a batched [`StageTap::after_perception`]; `score` is
    /// this tap's entry from the batched scoring pass.
    pub fn finish_perception(&mut self, score: f64, estimate: &mut CollisionEstimate) -> TapAction {
        self.perception_verdict(estimate, Some(score))
    }

    /// First half of a batched [`StageTap::after_planning`]; see
    /// [`DetectorTap::begin_perception`].  Also returns `None` for an empty
    /// trajectory, where the sequential hook returns [`TapAction::Continue`]
    /// without observing anything — the driver must treat `None` the same
    /// way (no scoring, no `finish` call, action `Continue`).
    pub fn begin_planning(
        &mut self,
        trajectory: &Trajectory,
        active_index: usize,
    ) -> Option<[f64; MonitoredStates::DIM]> {
        if !self.is_autoencoder() || trajectory.is_empty() {
            return None;
        }
        let index = active_index.min(trajectory.len() - 1);
        self.current.waypoint = trajectory.waypoints[index];
        Some(self.aad_deltas())
    }

    /// Second half of a batched [`StageTap::after_planning`]; `score` is
    /// this tap's entry from the batched scoring pass.
    pub fn finish_planning(
        &mut self,
        score: f64,
        trajectory: &mut Trajectory,
        active_index: usize,
    ) -> TapAction {
        self.planning_verdict(trajectory, active_index, Some(score))
    }

    /// First half of a batched [`StageTap::after_control`]; see
    /// [`DetectorTap::begin_perception`].
    pub fn begin_control(
        &mut self,
        command: &FlightCommand,
    ) -> Option<[f64; MonitoredStates::DIM]> {
        if !self.is_autoencoder() {
            return None;
        }
        self.current.command = *command;
        Some(self.aad_deltas())
    }

    /// Second half of a batched [`StageTap::after_control`]; `score` is this
    /// tap's entry from the batched scoring pass.
    pub fn finish_control(&mut self, score: f64, command: &mut FlightCommand) -> TapAction {
        self.control_verdict(command, Some(score))
    }
}

impl StageTap for DetectorTap {
    fn after_point_cloud(&mut self, _cloud: &mut PointCloud) {
        self.stats.ticks += 1;
    }

    fn after_occupancy(&mut self, _grid: &mut OccupancyGrid) {}

    fn after_perception(&mut self, estimate: &mut CollisionEstimate) -> TapAction {
        self.perception_verdict(estimate, None)
    }

    fn after_planning(&mut self, trajectory: &mut Trajectory, active_index: usize) -> TapAction {
        self.planning_verdict(trajectory, active_index, None)
    }

    fn after_control(&mut self, command: &mut FlightCommand) -> TapAction {
        self.control_verdict(command, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aad::AadConfig;
    use crate::gad::CgadConfig;
    use crate::training::TelemetrySet;
    use mavfi_nn::train::TrainConfig;
    use mavfi_ppc::states::Waypoint;
    use mavfi_sim::geometry::Vec3;

    fn smooth_states(step: usize) -> MonitoredStates {
        let t = step as f64 * 0.1;
        let mut states = MonitoredStates::default();
        states.set_field(StateField::TimeToCollision, 4.0 + (t * 0.1).sin());
        states.set_field(StateField::WaypointX, 5.0 + 2.0 * t);
        states.set_field(StateField::WaypointY, -3.0 + 1.5 * t);
        states.set_field(StateField::WaypointZ, 2.5);
        states.set_field(StateField::WaypointVx, 2.0);
        states.set_field(StateField::WaypointVy, 1.5);
        states.set_field(StateField::CommandVx, 2.0 + 0.3 * (t * 0.5).sin());
        states.set_field(StateField::CommandVy, 1.5 + 0.3 * (t * 0.5).cos());
        states.set_field(StateField::CommandYawRate, 0.1 * (t * 0.2).sin());
        states
    }

    fn telemetry() -> TelemetrySet {
        let mut set = TelemetrySet::new();
        for step in 0..600 {
            set.record(&smooth_states(step));
        }
        set
    }

    fn drive_normal_tick(tap: &mut DetectorTap, step: usize) -> TapAction {
        let states = smooth_states(step);
        tap.after_point_cloud(&mut PointCloud::default());
        let mut estimate = states.collision;
        let a = tap.after_perception(&mut estimate);
        let mut trajectory = Trajectory::new(vec![states.waypoint]);
        let b = tap.after_planning(&mut trajectory, 0);
        let mut command = states.command;
        let c = tap.after_control(&mut command);
        a.merge(b).merge(c)
    }

    #[test]
    fn gaussian_detector_flags_corrupted_waypoint_and_requests_planning_recompute() {
        let bank = telemetry().build_gad(CgadConfig::default());
        let mut tap = DetectorTap::new(DetectionScheme::Gaussian(bank));
        for step in 0..50 {
            assert_eq!(drive_normal_tick(&mut tap, step), TapAction::Continue, "step {step}");
        }
        // Corrupt the way-point X as an exponent flip would.
        let mut trajectory = Trajectory::new(vec![Waypoint {
            position: Vec3::new(4.0e155, -3.0 + 1.5 * 5.0, 2.5),
            ..Waypoint::default()
        }]);
        tap.after_point_cloud(&mut PointCloud::default());
        let mut estimate = smooth_states(51).collision;
        tap.after_perception(&mut estimate);
        let action = tap.after_planning(&mut trajectory, 0);
        assert_eq!(action, TapAction::Recompute);
        assert_eq!(tap.stats().recomputations_of(Stage::Planning), 1);
        assert_eq!(tap.scheme().label(), "Gaussian");
    }

    #[test]
    fn autoencoder_detector_abandons_corrupted_waypoint_without_replanning() {
        let (aad, _) = telemetry()
            .train_aad(AadConfig::default(), &TrainConfig { epochs: 15, ..TrainConfig::default() });
        let mut tap = DetectorTap::new(DetectionScheme::Autoencoder(aad));
        let mut false_alarms = 0;
        for step in 0..50 {
            if drive_normal_tick(&mut tap, step) != TapAction::Continue {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 2, "autoencoder raised {false_alarms} false alarms on clean data");

        let good_waypoint = tap.last_good.waypoint;
        let mut trajectory = Trajectory::new(vec![Waypoint {
            position: Vec3::new(4.0e155, good_waypoint.position.y, 2.5),
            velocity: good_waypoint.velocity,
            yaw: good_waypoint.yaw,
        }]);
        tap.after_point_cloud(&mut PointCloud::default());
        let mut estimate = smooth_states(51).collision;
        tap.after_perception(&mut estimate);
        let action = tap.after_planning(&mut trajectory, 0);
        // The corrupted way-point is replaced by the last good one and no
        // planning recomputation is requested.
        assert_eq!(action, TapAction::Continue);
        assert_eq!(trajectory.waypoints[0], good_waypoint);
        assert!(tap.stats().abandonments >= 1);
        assert_eq!(tap.stats().recomputations_of(Stage::Planning), 0);
    }

    #[test]
    fn autoencoder_detector_requests_control_recompute_for_corrupted_command() {
        let (aad, _) = telemetry()
            .train_aad(AadConfig::default(), &TrainConfig { epochs: 15, ..TrainConfig::default() });
        let mut tap = DetectorTap::new(DetectionScheme::Autoencoder(aad));
        for step in 0..50 {
            drive_normal_tick(&mut tap, step);
        }
        tap.after_point_cloud(&mut PointCloud::default());
        let mut estimate = smooth_states(51).collision;
        tap.after_perception(&mut estimate);
        let mut trajectory = Trajectory::new(vec![smooth_states(51).waypoint]);
        tap.after_planning(&mut trajectory, 0);
        let mut command = smooth_states(51).command;
        command.velocity.x = -3.0e200;
        let action = tap.after_control(&mut command);
        assert_eq!(action, TapAction::Recompute);
        assert_eq!(tap.stats().recomputations_of(Stage::Control), 1);
        assert!(tap.stats().total_alarms() >= 1);
    }

    #[test]
    fn batched_begin_finish_matches_sequential_hooks_bit_for_bit() {
        let (aad, _) = telemetry()
            .train_aad(AadConfig::default(), &TrainConfig { epochs: 15, ..TrainConfig::default() });
        // The scoring reference plays the batch driver's shared detector: any
        // detector with the same trained weights produces the same scores.
        let scorer = aad.clone();
        let mut scratch = crate::aad::AadBatchScratch::new();
        let mut sequential = DetectorTap::new(DetectionScheme::Autoencoder(aad.clone()));
        let mut batched = DetectorTap::new(DetectionScheme::Autoencoder(aad));
        assert!(batched.is_autoencoder());

        for step in 0..60 {
            let states = smooth_states(step);
            // Inject corruption periodically so alarm/abandon paths run too.
            let corrupt = step % 17 == 13;

            sequential.after_point_cloud(&mut PointCloud::default());
            batched.after_point_cloud(&mut PointCloud::default());

            let mut est_seq = states.collision;
            let mut est_bat = states.collision;
            let a_seq = sequential.after_perception(&mut est_seq);
            let deltas = batched.begin_perception(&est_bat).expect("AAD tap");
            let score = scorer.score_batch_with(&[deltas], &mut scratch)[0];
            let a_bat = batched.finish_perception(score, &mut est_bat);
            assert_eq!(a_seq, a_bat, "perception action, step {step}");
            assert_eq!(est_seq, est_bat, "perception estimate, step {step}");

            let mut waypoint = states.waypoint;
            if corrupt {
                waypoint.position.x = 4.0e155;
            }
            let mut traj_seq = Trajectory::new(vec![waypoint]);
            let mut traj_bat = traj_seq.clone();
            let p_seq = sequential.after_planning(&mut traj_seq, 0);
            let deltas = batched.begin_planning(&traj_bat, 0).expect("non-empty trajectory");
            let score = scorer.score_batch_with(&[deltas], &mut scratch)[0];
            let p_bat = batched.finish_planning(score, &mut traj_bat, 0);
            assert_eq!(p_seq, p_bat, "planning action, step {step}");
            assert_eq!(traj_seq, traj_bat, "trajectory, step {step}");

            let mut cmd_seq = states.command;
            let mut cmd_bat = states.command;
            let c_seq = sequential.after_control(&mut cmd_seq);
            let deltas = batched.begin_control(&cmd_bat).expect("AAD tap");
            let score = scorer.score_batch_with(&[deltas], &mut scratch)[0];
            let c_bat = batched.finish_control(score, &mut cmd_bat);
            assert_eq!(c_seq, c_bat, "control action, step {step}");
            assert_eq!(cmd_seq, cmd_bat, "command, step {step}");
        }
        assert_eq!(sequential, batched, "full tap state must stay bit-identical");
        assert!(sequential.stats().abandonments >= 1, "corruption path never ran");

        // Empty trajectory: the sequential hook continues without observing;
        // `begin_planning` must mirror that with `None`.
        let mut empty = Trajectory::new(Vec::new());
        assert_eq!(sequential.after_planning(&mut empty, 0), TapAction::Continue);
        assert_eq!(batched.begin_planning(&empty, 0), None);
        assert_eq!(sequential, batched);
    }

    #[test]
    fn gaussian_taps_take_no_part_in_batched_scoring() {
        let bank = telemetry().build_gad(CgadConfig::default());
        let mut tap = DetectorTap::new(DetectionScheme::Gaussian(bank));
        assert!(!tap.is_autoencoder());
        let states = smooth_states(0);
        assert_eq!(tap.begin_perception(&states.collision), None);
        assert_eq!(tap.begin_planning(&Trajectory::new(vec![states.waypoint]), 0), None);
        assert_eq!(tap.begin_control(&states.command), None);
    }

    #[test]
    fn clean_stream_keeps_stats_quiet() {
        let bank = telemetry().build_gad(CgadConfig::default());
        let mut tap = DetectorTap::new(DetectionScheme::Gaussian(bank));
        for step in 0..100 {
            drive_normal_tick(&mut tap, step);
        }
        assert_eq!(tap.stats().total_recomputations(), 0);
        assert_eq!(tap.stats().total_alarms(), 0);
        assert_eq!(tap.stats().ticks, 100);
    }
}
