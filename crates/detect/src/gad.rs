//! Gaussian-based anomaly detection (GAD, paper §IV-C).

use mavfi_ppc::states::{Stage, StateField};
use serde::{Deserialize, Serialize};

use crate::welford::Welford;

/// Configuration of one customised Gaussian detector (cGAD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgadConfig {
    /// Number of standard deviations away from the mean at which the alarm
    /// is raised (the paper's configurable `n`).
    pub n_sigma: f64,
    /// Minimum number of samples before alarms may fire (the online
    /// estimator needs a baseline first).
    pub warmup_samples: u64,
    /// Absolute deviation (in preprocessed code units) below which a value
    /// is never considered anomalous, protecting against alarms when the
    /// baseline variance is still nearly zero.
    pub min_deviation: f64,
}

impl Default for CgadConfig {
    fn default() -> Self {
        Self { n_sigma: 6.0, warmup_samples: 20, min_deviation: 48.0 }
    }
}

/// A customised Gaussian detector for a single monitored inter-kernel state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cgad {
    field: StateField,
    config: CgadConfig,
    stats: Welford,
    alarms: u64,
}

impl Cgad {
    /// Creates a detector for `field`.
    pub fn new(field: StateField, config: CgadConfig) -> Self {
        Self { field, config, stats: Welford::new(), alarms: 0 }
    }

    /// The monitored field.
    pub fn field(&self) -> StateField {
        self.field
    }

    /// Number of alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Number of (non-anomalous) samples absorbed into the baseline.
    pub fn samples(&self) -> u64 {
        self.stats.count()
    }

    /// Pre-loads the baseline with an error-free sample without alarm
    /// checking (used when seeding from training telemetry).
    pub fn prime(&mut self, delta: f64) {
        self.stats.push(delta);
    }

    /// Anomaly score of `delta`: its absolute z-score against the current
    /// baseline (0 while the baseline has no spread).
    pub fn score(&self, delta: f64) -> f64 {
        self.stats.z_score(delta).abs()
    }

    /// Observes one preprocessed delta.  Returns `true` when the value is an
    /// outlier; outliers are *not* absorbed into the baseline so that a
    /// corrupted sample cannot widen the detector's notion of normal.
    pub fn observe(&mut self, delta: f64) -> bool {
        let warmed_up = self.stats.count() >= self.config.warmup_samples;
        let deviation = (delta - self.stats.mean()).abs();
        let is_outlier = warmed_up
            && deviation > self.config.min_deviation
            && (self.stats.std_dev() <= f64::EPSILON
                || self.stats.z_score(delta).abs() > self.config.n_sigma);
        if is_outlier {
            self.alarms += 1;
        } else {
            self.stats.push(delta);
        }
        is_outlier
    }
}

/// The per-stage Gaussian detector bank: one cGAD per monitored state,
/// grouped by the stage whose recomputation an alarm triggers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadBank {
    detectors: Vec<Cgad>,
}

impl Default for GadBank {
    fn default() -> Self {
        Self::new(CgadConfig::default())
    }
}

impl GadBank {
    /// Creates a bank with one detector per monitored state.
    pub fn new(config: CgadConfig) -> Self {
        let detectors = StateField::ALL.into_iter().map(|field| Cgad::new(field, config)).collect();
        Self { detectors }
    }

    /// Immutable access to the per-field detectors.
    pub fn detectors(&self) -> &[Cgad] {
        &self.detectors
    }

    /// Observes the delta of a single field, returning `true` on alarm.
    pub fn observe_field(&mut self, field: StateField, delta: f64) -> bool {
        self.detectors[field.index()].observe(delta)
    }

    /// Observes every field of a full preprocessed vector, returning the
    /// stages that raised at least one alarm.
    pub fn observe_all(&mut self, deltas: &[f64; StateField::ALL.len()]) -> Vec<Stage> {
        let mut stages = Vec::new();
        for field in StateField::ALL {
            if self.observe_field(field, deltas[field.index()]) && !stages.contains(&field.stage())
            {
                stages.push(field.stage());
            }
        }
        stages
    }

    /// Maximum per-field anomaly score of a full preprocessed vector, usable
    /// as a scalar score for ROC analysis.
    pub fn score(&self, deltas: &[f64; StateField::ALL.len()]) -> f64 {
        StateField::ALL
            .into_iter()
            .map(|field| self.detectors[field.index()].score(deltas[field.index()]))
            .fold(0.0, f64::max)
    }

    /// Seeds every detector's baseline from error-free telemetry.
    pub fn prime(&mut self, samples: &[[f64; StateField::ALL.len()]]) {
        for sample in samples {
            for field in StateField::ALL {
                self.detectors[field.index()].prime(sample[field.index()]);
            }
        }
    }

    /// Total alarms raised per stage.
    pub fn alarms_for_stage(&self, stage: Stage) -> u64 {
        self.detectors.iter().filter(|d| d.field().stage() == stage).map(Cgad::alarms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_delta(rng: &mut StdRng) -> f64 {
        // Narrow jitter typical of smooth flight in code units.
        (0..4).map(|_| rng.gen_range(-2.0..2.0)).sum()
    }

    #[test]
    fn no_alarms_during_warmup() {
        let mut cgad = Cgad::new(StateField::CommandVx, CgadConfig::default());
        for _ in 0..10 {
            assert!(!cgad.observe(10_000.0), "warmup must never alarm");
        }
    }

    #[test]
    fn detects_outliers_after_training_on_normal_data() {
        let mut cgad = Cgad::new(StateField::WaypointX, CgadConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(!cgad.observe(normal_delta(&mut rng)), "normal data should not alarm");
        }
        assert!(cgad.observe(5_000.0), "a huge delta must alarm");
        assert_eq!(cgad.alarms(), 1);
        // The outlier was not absorbed: normal data still passes.
        assert!(!cgad.observe(normal_delta(&mut rng)));
    }

    #[test]
    fn small_deviations_never_alarm_even_with_tiny_variance() {
        let config = CgadConfig { min_deviation: 48.0, ..CgadConfig::default() };
        let mut cgad = Cgad::new(StateField::CommandVz, config);
        for _ in 0..100 {
            cgad.observe(0.0);
        }
        // Variance is zero; a small wiggle stays below min_deviation.
        assert!(!cgad.observe(3.0));
        // A big jump alarms even with zero variance.
        assert!(cgad.observe(500.0));
    }

    #[test]
    fn bank_reports_alarming_stages() {
        let mut bank = GadBank::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut normal = [0.0; 13];
        for _ in 0..100 {
            for slot in normal.iter_mut() {
                *slot = normal_delta(&mut rng);
            }
            assert!(bank.observe_all(&normal).is_empty());
        }
        let mut corrupted = normal;
        corrupted[StateField::WaypointY.index()] = 8_000.0;
        let stages = bank.observe_all(&corrupted);
        assert_eq!(stages, vec![Stage::Planning]);
        assert_eq!(bank.alarms_for_stage(Stage::Planning), 1);
        assert_eq!(bank.alarms_for_stage(Stage::Control), 0);
    }

    #[test]
    fn priming_seeds_the_baseline() {
        let mut bank = GadBank::default();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<[f64; 13]> =
            (0..50).map(|_| std::array::from_fn(|_| normal_delta(&mut rng))).collect();
        bank.prime(&samples);
        assert!(bank.detectors()[0].samples() >= 50);
        // Immediately able to detect without further warmup.
        let mut corrupted = [0.0; 13];
        corrupted[StateField::TimeToCollision.index()] = 9_999.0;
        assert_eq!(bank.observe_all(&corrupted), vec![Stage::Perception]);
    }
}
