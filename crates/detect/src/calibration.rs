//! Detector calibration and ablation: labelled synthetic anomaly streams,
//! threshold/parameter sweeps and ROC analysis across every detection
//! scheme in this crate.
//!
//! The paper treats the Gaussian `n` (§IV-C, "a configurable variable that
//! can be optimized based on task complexity") and the autoencoder threshold
//! (§IV-D, "the upper bound of the reconstruction error in the error-free
//! run") as fixed design points.  The sweeps in this module expose the full
//! operating curve behind those choices, which the ablation benches report.

use mavfi_ppc::states::{MonitoredStates, StateField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::aad::AadDetector;
use crate::ewma::EwmaBank;
use crate::gad::GadBank;
use crate::mahalanobis::MahalanobisDetector;
use crate::metrics::{ConfusionMatrix, GroundTruth, RocCurve};
use crate::static_range::StaticRangeBank;

const DIM: usize = MonitoredStates::DIM;

/// How a corrupted sample differs from the clean sample it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionProfile {
    /// An exponent-flip-sized excursion of one state's delta (the dominant
    /// harmful manifestation in the paper's Fig. 4 analysis).
    ExponentFlip {
        /// Magnitude of the injected delta, in preprocessed code units.
        magnitude: f64,
    },
    /// An in-range but correlation-breaking perturbation: every state is
    /// shifted to the same moderate value, so per-field detectors see nothing
    /// unusual while the joint distribution is violated.
    CorrelationBreak {
        /// Value assigned to every state's delta, in code units.
        level: f64,
    },
    /// A small mantissa-level wiggle of one state, which the paper's
    /// preprocessing intentionally leaves (mostly) invisible.
    MantissaNoise {
        /// Magnitude of the wiggle, in code units.
        magnitude: f64,
    },
}

impl CorruptionProfile {
    fn apply(self, sample: &mut [f64; DIM], rng: &mut StdRng) {
        match self {
            Self::ExponentFlip { magnitude } => {
                let field = StateField::ALL[rng.gen_range(0..StateField::ALL.len())];
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sample[field.index()] = sign * magnitude;
            }
            Self::CorrelationBreak { level } => {
                for slot in sample.iter_mut() {
                    *slot = level;
                }
            }
            Self::MantissaNoise { magnitude } => {
                let field = StateField::ALL[rng.gen_range(0..StateField::ALL.len())];
                sample[field.index()] += magnitude * rng.gen_range(-1.0..1.0);
            }
        }
    }
}

/// Configuration of a labelled evaluation stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticAnomalyConfig {
    /// Fraction of evaluation samples that carry a corruption.
    pub corruption_rate: f64,
    /// The corruption applied to each corrupted sample.
    pub profile: CorruptionProfile,
    /// Seed of the corruption-site selection.
    pub seed: u64,
}

impl Default for SyntheticAnomalyConfig {
    fn default() -> Self {
        Self {
            corruption_rate: 0.05,
            profile: CorruptionProfile::ExponentFlip { magnitude: 6000.0 },
            seed: 17,
        }
    }
}

/// A labelled stream of preprocessed delta vectors for detector evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabeledStream {
    samples: Vec<([f64; DIM], GroundTruth)>,
}

impl LabeledStream {
    /// Builds an evaluation stream by corrupting a fraction of clean
    /// preprocessed samples according to `config`.
    ///
    /// When the corruption rate is positive and the input non-empty, at
    /// least one sample is guaranteed to be corrupted: small quick-test
    /// streams would otherwise occasionally draw zero corruptions, which
    /// degenerates every downstream ROC curve.
    pub fn synthesize(clean: &[[f64; DIM]], config: SyntheticAnomalyConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rate = config.corruption_rate.clamp(0.0, 1.0);
        let mut samples: Vec<([f64; DIM], GroundTruth)> = clean
            .iter()
            .map(|sample| {
                let mut value = *sample;
                if rng.gen_bool(rate) {
                    config.profile.apply(&mut value, &mut rng);
                    (value, GroundTruth::Corrupted)
                } else {
                    (value, GroundTruth::Clean)
                }
            })
            .collect();
        let none_corrupted = samples.iter().all(|(_, truth)| *truth == GroundTruth::Clean);
        if rate > 0.0 && none_corrupted && !samples.is_empty() {
            let index = rng.gen_range(0..samples.len());
            let (value, truth) = &mut samples[index];
            config.profile.apply(value, &mut rng);
            *truth = GroundTruth::Corrupted;
        }
        Self { samples }
    }

    /// The labelled samples, in stream order.
    pub fn samples(&self) -> &[([f64; DIM], GroundTruth)] {
        &self.samples
    }

    /// Number of samples in the stream.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of corrupted samples in the stream.
    pub fn corrupted(&self) -> usize {
        self.samples.iter().filter(|(_, truth)| *truth == GroundTruth::Corrupted).count()
    }
}

/// Anything that maps a preprocessed delta vector to a scalar anomaly score
/// (higher = more anomalous).  Implemented by every detector in this crate
/// so sweeps and ROC analysis can treat them uniformly.
pub trait AnomalyScorer {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Anomaly score of one preprocessed delta vector.
    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64;
}

impl AnomalyScorer for GadBank {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64 {
        self.score(deltas)
    }
}

impl AnomalyScorer for AadDetector {
    fn name(&self) -> &'static str {
        "autoencoder"
    }

    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64 {
        self.score(deltas)
    }
}

impl AnomalyScorer for EwmaBank {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64 {
        self.score(deltas)
    }
}

impl AnomalyScorer for StaticRangeBank {
    fn name(&self) -> &'static str {
        "static_range"
    }

    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64 {
        self.score(deltas)
    }
}

impl AnomalyScorer for MahalanobisDetector {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn anomaly_score(&self, deltas: &[f64; DIM]) -> f64 {
        self.distance(deltas)
    }
}

/// Scores every sample of a labelled stream with a frozen detector,
/// producing the input of [`RocCurve::from_scores`].
pub fn score_stream(scorer: &dyn AnomalyScorer, stream: &LabeledStream) -> Vec<(f64, GroundTruth)> {
    stream.samples().iter().map(|(sample, truth)| (scorer.anomaly_score(sample), *truth)).collect()
}

/// Builds the ROC curve of a frozen detector over a labelled stream.
pub fn roc_curve(scorer: &dyn AnomalyScorer, stream: &LabeledStream) -> RocCurve {
    RocCurve::from_scores(&score_stream(scorer, stream))
}

/// Evaluates a stateful per-sample verdict function against a labelled
/// stream, accumulating the confusion matrix.
pub fn evaluate_stream(
    mut verdict: impl FnMut(&[f64; DIM]) -> bool,
    stream: &LabeledStream,
) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::new();
    for (sample, truth) in stream.samples() {
        matrix.record(*truth, verdict(sample));
    }
    matrix
}

/// One point of a parameter sweep: the swept parameter value and the
/// detection quality achieved at that value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The swept parameter (n-sigma, threshold margin, alpha, ...).
    pub parameter: f64,
    /// Detection quality at this parameter value.
    pub matrix: ConfusionMatrix,
}

impl OperatingPoint {
    /// Convenience accessor: F1 score at this operating point.
    pub fn f1(&self) -> f64 {
        self.matrix.f1()
    }
}

/// Sweeps the Gaussian detectors' `n_sigma` parameter.  For each value a
/// fresh bank is primed on `training` and evaluated on `stream`.
pub fn sweep_gad_nsigma(
    training: &[[f64; DIM]],
    stream: &LabeledStream,
    n_sigmas: &[f64],
    base: crate::gad::CgadConfig,
) -> Vec<OperatingPoint> {
    n_sigmas
        .iter()
        .map(|&n_sigma| {
            let mut bank = GadBank::new(crate::gad::CgadConfig { n_sigma, ..base });
            bank.prime(training);
            let matrix = evaluate_stream(|sample| !bank.observe_all(sample).is_empty(), stream);
            OperatingPoint { parameter: n_sigma, matrix }
        })
        .collect()
}

/// Sweeps the autoencoder alarm threshold as a multiple of the trained
/// detector's own threshold, without retraining.
pub fn sweep_aad_threshold(
    detector: &AadDetector,
    stream: &LabeledStream,
    margins: &[f64],
) -> Vec<OperatingPoint> {
    let scored = score_stream(detector, stream);
    margins
        .iter()
        .map(|&margin| {
            let threshold = detector.threshold() * margin;
            let mut matrix = ConfusionMatrix::new();
            for (score, truth) in &scored {
                matrix.record(*truth, *score > threshold);
            }
            OperatingPoint { parameter: margin, matrix }
        })
        .collect()
}

/// Sweeps the EWMA smoothing factor.  For each alpha a fresh bank is primed
/// on `training` and evaluated on `stream`.
pub fn sweep_ewma_alpha(
    training: &[[f64; DIM]],
    stream: &LabeledStream,
    alphas: &[f64],
    base: crate::ewma::EwmaConfig,
) -> Vec<OperatingPoint> {
    alphas
        .iter()
        .map(|&alpha| {
            let mut bank = EwmaBank::new(crate::ewma::EwmaConfig { alpha, ..base });
            bank.prime(training);
            let matrix = evaluate_stream(|sample| !bank.observe_all(sample).is_empty(), stream);
            OperatingPoint { parameter: alpha, matrix }
        })
        .collect()
}

/// Picks the operating point with the highest F1 score, breaking ties toward
/// the smaller parameter.  Returns `None` when `points` is empty.
pub fn best_by_f1(points: &[OperatingPoint]) -> Option<OperatingPoint> {
    points.iter().copied().fold(None, |best, candidate| match best {
        None => Some(candidate),
        Some(current) if candidate.f1() > current.f1() => Some(candidate),
        Some(current) => Some(current),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aad::AadConfig;
    use crate::ewma::EwmaConfig;
    use crate::gad::CgadConfig;
    use crate::mahalanobis::MahalanobisConfig;
    use crate::static_range::StaticRangeConfig;
    use mavfi_nn::train::TrainConfig;

    /// Correlated clean telemetry shared by every calibration test.
    fn clean_samples(count: usize, seed: u64) -> Vec<[f64; 13]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let a: f64 = rng.gen_range(-8.0..8.0);
                std::array::from_fn(|i| if i < 7 { a } else { -a } + rng.gen_range(-0.5..0.5))
            })
            .collect()
    }

    fn exponent_flip_stream(seed: u64) -> LabeledStream {
        LabeledStream::synthesize(
            &clean_samples(400, seed),
            SyntheticAnomalyConfig { seed: seed + 1, ..SyntheticAnomalyConfig::default() },
        )
    }

    #[test]
    fn synthesized_stream_has_roughly_the_requested_corruption_rate() {
        let stream = exponent_flip_stream(1);
        assert_eq!(stream.len(), 400);
        let rate = stream.corrupted() as f64 / stream.len() as f64;
        assert!(rate > 0.01 && rate < 0.12, "rate {rate}");
    }

    #[test]
    fn zero_and_full_corruption_rates_are_respected() {
        let clean = clean_samples(50, 2);
        let none = LabeledStream::synthesize(
            &clean,
            SyntheticAnomalyConfig { corruption_rate: 0.0, ..SyntheticAnomalyConfig::default() },
        );
        assert_eq!(none.corrupted(), 0);
        let all = LabeledStream::synthesize(
            &clean,
            SyntheticAnomalyConfig { corruption_rate: 1.0, ..SyntheticAnomalyConfig::default() },
        );
        assert_eq!(all.corrupted(), 50);
    }

    #[test]
    fn every_detector_separates_exponent_flips_from_clean_data() {
        let training = clean_samples(600, 3);
        let stream = exponent_flip_stream(4);

        let mut gad = GadBank::new(CgadConfig::default());
        gad.prime(&training);
        let mut ewma = EwmaBank::new(EwmaConfig::default());
        ewma.prime(&training);
        let ranges = StaticRangeBank::calibrate(&training, StaticRangeConfig::default());
        let mahalanobis = MahalanobisDetector::fit(&training, MahalanobisConfig::default());
        let (aad, _) = AadDetector::train(
            &training,
            AadConfig::default(),
            &TrainConfig { epochs: 20, ..TrainConfig::default() },
        );

        let scorers: Vec<&dyn AnomalyScorer> = vec![&gad, &ewma, &ranges, &mahalanobis, &aad];
        for scorer in scorers {
            let curve = roc_curve(scorer, &stream);
            assert!(
                curve.auc() > 0.9,
                "{} separates exponent flips poorly: AUC {}",
                scorer.name(),
                curve.auc()
            );
        }
    }

    #[test]
    fn correlation_breaks_favour_joint_detectors_over_per_field_ones() {
        let training = clean_samples(600, 5);
        let stream = LabeledStream::synthesize(
            &clean_samples(400, 6),
            SyntheticAnomalyConfig {
                profile: CorruptionProfile::CorrelationBreak { level: 6.0 },
                ..SyntheticAnomalyConfig::default()
            },
        );

        let mut gad = GadBank::new(CgadConfig::default());
        gad.prime(&training);
        let mahalanobis = MahalanobisDetector::fit(&training, MahalanobisConfig::default());

        let per_field_auc = roc_curve(&gad, &stream).auc();
        let joint_auc = roc_curve(&mahalanobis, &stream).auc();
        assert!(
            joint_auc > per_field_auc + 0.1,
            "joint {joint_auc} should beat per-field {per_field_auc} on correlation breaks"
        );
    }

    #[test]
    fn mantissa_noise_is_largely_invisible_by_design() {
        let training = clean_samples(600, 7);
        let stream = LabeledStream::synthesize(
            &clean_samples(400, 8),
            SyntheticAnomalyConfig {
                profile: CorruptionProfile::MantissaNoise { magnitude: 2.0 },
                ..SyntheticAnomalyConfig::default()
            },
        );
        let mut gad = GadBank::new(CgadConfig::default());
        gad.prime(&training);
        let matrix = evaluate_stream(|sample| !gad.observe_all(sample).is_empty(), &stream);
        assert_eq!(matrix.false_positives, 0);
        assert_eq!(matrix.true_positives, 0, "mantissa-level noise should be ignored");
    }

    #[test]
    fn nsigma_sweep_trades_recall_for_false_positives() {
        let training = clean_samples(600, 9);
        let stream = exponent_flip_stream(10);
        let points = sweep_gad_nsigma(
            &training,
            &stream,
            &[1.0, 3.0, 6.0, 12.0],
            CgadConfig { min_deviation: 0.0, ..CgadConfig::default() },
        );
        assert_eq!(points.len(), 4);
        // Tighter thresholds never have fewer false positives than looser ones.
        for pair in points.windows(2) {
            assert!(pair[0].matrix.false_positives >= pair[1].matrix.false_positives);
            assert!(pair[0].matrix.recall() >= pair[1].matrix.recall() - 1e-12);
        }
        let best = best_by_f1(&points).expect("non-empty sweep");
        assert!(best.f1() > 0.5, "best F1 {}", best.f1());
    }

    #[test]
    fn aad_threshold_sweep_is_monotone_in_the_margin() {
        let training = clean_samples(600, 11);
        let stream = exponent_flip_stream(12);
        let (aad, _) = AadDetector::train(
            &training,
            AadConfig::default(),
            &TrainConfig { epochs: 20, ..TrainConfig::default() },
        );
        let points = sweep_aad_threshold(&aad, &stream, &[0.25, 0.5, 1.0, 2.0, 4.0]);
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(pair[0].matrix.recall() >= pair[1].matrix.recall() - 1e-12);
            assert!(
                pair[0].matrix.false_positive_rate()
                    >= pair[1].matrix.false_positive_rate() - 1e-12
            );
        }
    }

    #[test]
    fn ewma_alpha_sweep_produces_one_point_per_alpha() {
        let training = clean_samples(300, 13);
        let stream = exponent_flip_stream(14);
        let points = sweep_ewma_alpha(&training, &stream, &[0.01, 0.1, 0.5], EwmaConfig::default());
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.matrix.total() as usize == stream.len()));
    }

    #[test]
    fn best_by_f1_of_empty_sweep_is_none() {
        assert!(best_by_f1(&[]).is_none());
    }
}
