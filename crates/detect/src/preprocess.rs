//! Data preprocessing for the anomaly detectors (paper §IV-B): compact
//! 16-bit magnitude codes and per-state temporal deltas.
//!
//! The paper transforms the sign and exponent bits of each monitored
//! `float64` into a 16-bit integer and then takes per-state deltas.  The raw
//! sign+exponent code ([`sign_exponent`]) is provided for reference, but it
//! is discontinuous around zero: a velocity smoothly crossing 0 m/s jumps by
//! thousands of code units, which both widens the Gaussian detectors'
//! baselines and saturates the autoencoder.  The operational
//! [`Preprocessor`] therefore uses [`magnitude_code`], a smooth
//! sign-and-log-magnitude 16-bit code that keeps the properties the paper
//! relies on — insensitivity to mantissa-level noise, large response to
//! sign/exponent corruption — while remaining continuous through zero.
//! DESIGN.md records this substitution.

use mavfi_ppc::states::MonitoredStates;
use serde::{Deserialize, Serialize};

/// Extracts the sign and exponent bits of a double as a 16-bit integer (the
/// paper's literal transformation).
///
/// # Examples
///
/// ```
/// use mavfi_detect::preprocess::sign_exponent;
///
/// assert_eq!(sign_exponent(0.0), 0);
/// assert!(sign_exponent(-1.0) > sign_exponent(1.0));
/// assert!(sign_exponent(1.0e100) > sign_exponent(1.0));
/// ```
pub fn sign_exponent(value: f64) -> i16 {
    // Top 12 bits: 1 sign bit + 11 exponent bits.
    (value.to_bits() >> 52) as i16
}

/// Quantisation factor of [`magnitude_code`]: code units per doubling of
/// magnitude.
const CODE_UNITS_PER_OCTAVE: f64 = 32.0;

/// Smooth 16-bit sign-and-magnitude code: `sign(v) * 32 * log2(1 + |v|)`,
/// saturated to the `i16` range.
///
/// Mantissa-level noise moves the code by a few units; a sign or exponent
/// bit flip moves it by hundreds to thousands, exactly the contrast the
/// detectors need.
///
/// # Examples
///
/// ```
/// use mavfi_detect::preprocess::magnitude_code;
///
/// assert_eq!(magnitude_code(0.0), 0);
/// assert!((magnitude_code(2.0) - magnitude_code(2.1)).abs() < 5);
/// assert!((magnitude_code(2.0) - magnitude_code(2.0e100)).unsigned_abs() > 1000);
/// ```
pub fn magnitude_code(value: f64) -> i16 {
    if value == 0.0 || !value.is_finite() && value.is_nan() {
        return 0;
    }
    let magnitude = if value.is_finite() { value.abs() } else { f64::MAX };
    let code = value.signum() * CODE_UNITS_PER_OCTAVE * (1.0 + magnitude).log2();
    // Saturate symmetrically (to -32767, not i16::MIN) so the code stays an
    // odd function even at the extreme end of the double range.
    code.clamp(-f64::from(i16::MAX), f64::from(i16::MAX)) as i16
}

/// Computes the 13-dimensional preprocessed feature vector: the change of
/// each monitored state's magnitude code since the previous observation
/// ("delta" in the paper).
///
/// The delta distribution of normal flight is narrow and close to Gaussian,
/// which is exactly what the Gaussian detector models and what makes
/// corrupted values stand out.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    previous: Option<[i16; MonitoredStates::DIM]>,
}

impl Preprocessor {
    /// Creates a preprocessor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the history; the next observation produces an all-zero delta.
    /// Called by the recovery path after a recomputation so the corrupted
    /// sample does not poison the baseline.
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Transforms one raw monitored-state snapshot into its delta vector.
    pub fn process(&mut self, states: &MonitoredStates) -> [f64; MonitoredStates::DIM] {
        let raw = states.as_array();
        let transformed: [i16; MonitoredStates::DIM] =
            std::array::from_fn(|i| magnitude_code(raw[i]));
        let deltas = match self.previous {
            Some(previous) => {
                std::array::from_fn(|i| f64::from(transformed[i]) - f64::from(previous[i]))
            }
            None => [0.0; MonitoredStates::DIM],
        };
        self.previous = Some(transformed);
        deltas
    }

    /// Returns `true` when at least one observation has been processed.
    pub fn has_history(&self) -> bool {
        self.previous.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_ppc::states::StateField;

    #[test]
    fn sign_exponent_orders_magnitudes() {
        assert!(sign_exponent(1.0e10) > sign_exponent(1.0));
        assert!(sign_exponent(1.0) > sign_exponent(1.0e-10));
        // Negative values land in a disjoint (higher, sign-bit-set) band.
        assert!(sign_exponent(-1.0) > sign_exponent(1.0e300));
        // The mantissa is invisible to the raw transform.
        assert_eq!(sign_exponent(1.5), sign_exponent(1.9));
    }

    #[test]
    fn magnitude_code_is_smooth_near_zero_and_sensitive_to_exponent_flips() {
        // Crossing zero changes the code only slightly.
        assert!((magnitude_code(0.3) - magnitude_code(-0.3)).abs() < 40);
        // Mantissa-level changes are a handful of units.
        assert!((magnitude_code(3.0) - magnitude_code(3.1)).abs() < 4);
        // Exponent corruption shifts the code by thousands.
        assert!((i32::from(magnitude_code(3.0)) - i32::from(magnitude_code(3.0e120))).abs() > 1000);
        // Sign corruption of a large value is also visible.
        assert!((i32::from(magnitude_code(30.0)) - i32::from(magnitude_code(-30.0))).abs() > 200);
        // Non-finite inputs stay bounded, and saturation is symmetric so
        // the code remains an odd function of its input.
        assert_eq!(magnitude_code(f64::NAN), 0);
        assert_eq!(magnitude_code(f64::INFINITY), i16::MAX);
        assert_eq!(magnitude_code(f64::NEG_INFINITY), -i16::MAX);
    }

    #[test]
    fn first_observation_yields_zero_deltas() {
        let mut preprocessor = Preprocessor::new();
        let deltas = preprocessor.process(&MonitoredStates::default());
        assert_eq!(deltas, [0.0; 13]);
        assert!(preprocessor.has_history());
    }

    #[test]
    fn smooth_flight_produces_small_deltas_and_corruption_large_ones() {
        let mut preprocessor = Preprocessor::new();
        let mut states = MonitoredStates::default();
        states.set_field(StateField::CommandVx, 2.0);
        preprocessor.process(&states);

        // Smooth change: 2.0 -> 2.3 moves the code only slightly.
        states.set_field(StateField::CommandVx, 2.3);
        let smooth = preprocessor.process(&states);
        assert!(smooth[StateField::CommandVx.index()].abs() < 10.0);

        // Corruption: exponent flip to a huge value.
        states.set_field(StateField::CommandVx, 2.3e150);
        let corrupted = preprocessor.process(&states);
        assert!(corrupted[StateField::CommandVx.index()].abs() > 1000.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut preprocessor = Preprocessor::new();
        preprocessor.process(&MonitoredStates::default());
        preprocessor.reset();
        assert!(!preprocessor.has_history());
        let deltas = preprocessor.process(&MonitoredStates::default());
        assert_eq!(deltas, [0.0; 13]);
    }
}
