//! Multivariate-Gaussian (Mahalanobis-distance) anomaly detection, an
//! ablation baseline sitting between GAD and AAD.
//!
//! The paper attributes AAD's edge over GAD to exploiting *correlation*
//! among the 13 monitored inter-kernel states.  A multivariate Gaussian with
//! a full covariance matrix is the classical, non-neural way to capture the
//! same correlations; comparing it against both schemes separates "the
//! autoencoder wins because it models correlation" from "the autoencoder
//! wins because it is non-linear".

use mavfi_ppc::states::MonitoredStates;
use serde::{Deserialize, Serialize};

const DIM: usize = MonitoredStates::DIM;

/// Configuration of the Mahalanobis-distance detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MahalanobisConfig {
    /// Alarm threshold as a multiplier on the largest Mahalanobis distance
    /// observed in the training telemetry (analogous to the AAD threshold
    /// margin on the reconstruction error).
    pub threshold_margin: f64,
    /// Ridge added to the covariance diagonal before inversion, keeping the
    /// matrix well conditioned when some states barely move during training.
    pub regularization: f64,
}

impl Default for MahalanobisConfig {
    fn default() -> Self {
        Self { threshold_margin: 1.5, regularization: 1.0 }
    }
}

/// A multivariate-Gaussian detector over the 13-dimensional preprocessed
/// delta vector.
///
/// The precision matrix is stored as one contiguous row-major buffer of
/// `DIM * DIM` values: the per-tick [`MahalanobisDetector::distance`] walks
/// it row by row, so a flat layout keeps the quadratic form on one cache
/// line per row instead of chasing a `Vec<Vec<_>>` pointer per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MahalanobisDetector {
    mean: [f64; DIM],
    precision: Vec<f64>,
    threshold: f64,
    config: MahalanobisConfig,
    alarms: u64,
    observations: u64,
}

impl MahalanobisDetector {
    /// Fits the detector to error-free preprocessed telemetry: estimates the
    /// mean vector and covariance matrix, inverts the (regularised)
    /// covariance, and sets the alarm threshold from the training maximum.
    ///
    /// Both moments accumulate raw sums and divide once at the end — one
    /// pass each, one rounding step per entry instead of one per sample,
    /// which is both fewer flops and a tighter floating-point error bound
    /// than dividing inside the accumulation loops.
    ///
    /// # Panics
    ///
    /// Panics if `samples` contains fewer than two vectors.
    pub fn fit(samples: &[[f64; DIM]], config: MahalanobisConfig) -> Self {
        assert!(samples.len() >= 2, "Mahalanobis fitting requires at least two samples");

        let count = samples.len() as f64;
        let mut mean = [0.0; DIM];
        for sample in samples {
            for (slot, value) in mean.iter_mut().zip(sample) {
                *slot += value;
            }
        }
        for slot in &mut mean {
            *slot /= count;
        }

        // Accumulate raw centered products row-major, cache-friendly.
        let mut covariance = vec![0.0; DIM * DIM];
        for sample in samples {
            for row in 0..DIM {
                let dr = sample[row] - mean[row];
                let cov_row = &mut covariance[row * DIM..(row + 1) * DIM];
                for (col, cov) in cov_row.iter_mut().enumerate() {
                    *cov += dr * (sample[col] - mean[col]);
                }
            }
        }
        let normalizer = count - 1.0;
        for cov in &mut covariance {
            *cov /= normalizer;
        }
        for row in 0..DIM {
            covariance[row * DIM + row] += config.regularization;
        }

        let precision = invert(&covariance, DIM)
            .expect("regularised covariance matrix is symmetric positive definite");

        let mut detector =
            Self { mean, precision, threshold: f64::INFINITY, config, alarms: 0, observations: 0 };
        let max_training_distance =
            samples.iter().map(|sample| detector.distance(sample)).fold(0.0_f64, f64::max);
        detector.threshold = (max_training_distance * config.threshold_margin).max(1e-9);
        detector
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64; DIM] {
        &self.mean
    }

    /// The alarm threshold on the Mahalanobis distance.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Number of vectors observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Mahalanobis distance of one preprocessed delta vector from the fitted
    /// distribution (the anomaly score).  Allocation-free: the quadratic
    /// form runs over the contiguous row-major precision buffer.
    pub fn distance(&self, deltas: &[f64; DIM]) -> f64 {
        let mut centered = [0.0; DIM];
        for ((slot, value), mean) in centered.iter_mut().zip(deltas).zip(&self.mean) {
            *slot = if value.is_finite() { value - mean } else { 0.0 };
        }
        let mut quadratic = 0.0;
        for (row, precision_row) in self.precision.chunks_exact(DIM).enumerate() {
            let mut dot = 0.0;
            for (precision_value, centered_value) in precision_row.iter().zip(&centered) {
                dot += precision_value * centered_value;
            }
            quadratic += centered[row] * dot;
        }
        quadratic.max(0.0).sqrt()
    }

    /// Observes one vector; returns `true` when the distance exceeds the
    /// threshold.
    pub fn observe(&mut self, deltas: &[f64; DIM]) -> bool {
        self.observations += 1;
        let alarm = self.distance(deltas) > self.threshold;
        if alarm {
            self.alarms += 1;
        }
        alarm
    }
}

/// Inverts a small symmetric positive-definite matrix (given and returned
/// as a flat row-major buffer of `n * n` values) by Gauss-Jordan
/// elimination with partial pivoting.  Returns `None` when a pivot collapses
/// to zero (singular input).
fn invert(matrix: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(matrix.len(), n * n, "matrix buffer must hold n * n values");
    // Augmented [A | I] rows, each of width 2n, in one flat buffer.
    let width = 2 * n;
    let mut augmented = vec![0.0; n * width];
    for row in 0..n {
        augmented[row * width..row * width + n].copy_from_slice(&matrix[row * n..(row + 1) * n]);
        augmented[row * width + n + row] = 1.0;
    }

    for pivot in 0..n {
        let best_row = (pivot..n)
            .max_by(|&a, &b| {
                augmented[a * width + pivot]
                    .abs()
                    .partial_cmp(&augmented[b * width + pivot].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty pivot range");
        if augmented[best_row * width + pivot].abs() < 1e-12 {
            return None;
        }
        if best_row != pivot {
            for col in 0..width {
                augmented.swap(pivot * width + col, best_row * width + col);
            }
        }

        let pivot_value = augmented[pivot * width + pivot];
        for value in &mut augmented[pivot * width..(pivot + 1) * width] {
            *value /= pivot_value;
        }
        for row in 0..n {
            if row == pivot {
                continue;
            }
            let factor = augmented[row * width + pivot];
            if factor == 0.0 {
                continue;
            }
            for col in 0..width {
                let pivot_value = augmented[pivot * width + col];
                augmented[row * width + col] -= factor * pivot_value;
            }
        }
    }

    let mut inverse = vec![0.0; n * n];
    for row in 0..n {
        inverse[row * n..(row + 1) * n]
            .copy_from_slice(&augmented[row * width + n..(row + 1) * width]);
    }
    Some(inverse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mavfi_ppc::states::StateField;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Strongly correlated telemetry: the first seven deltas move together,
    /// the rest move opposite, as a smoothly manoeuvring vehicle would.
    fn correlated_samples(count: usize, seed: u64) -> Vec<[f64; 13]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let a: f64 = rng.gen_range(-8.0..8.0);
                std::array::from_fn(|i| if i < 7 { a } else { -a } + rng.gen_range(-0.5..0.5))
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn fitting_one_sample_panics() {
        let _ = MahalanobisDetector::fit(&[[0.0; 13]], MahalanobisConfig::default());
    }

    #[test]
    fn clean_data_passes_and_gross_corruption_alarms() {
        let samples = correlated_samples(600, 1);
        let mut detector = MahalanobisDetector::fit(&samples, MahalanobisConfig::default());
        let held_out = correlated_samples(100, 7);
        let mut false_alarms = 0;
        for sample in &held_out {
            if detector.observe(sample) {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 5, "too many false alarms: {false_alarms}");

        let mut corrupted = held_out[0];
        corrupted[StateField::WaypointZ.index()] = 12_000.0;
        assert!(detector.observe(&corrupted));
        assert!(detector.alarms() >= 1);
        assert_eq!(detector.observations(), 101);
    }

    #[test]
    fn correlation_violations_are_detected_even_within_per_field_range() {
        // The same scenario the AAD test uses: individual values in range,
        // correlation broken.  A full-covariance Gaussian must catch it too.
        let samples = correlated_samples(600, 2);
        let mut detector = MahalanobisDetector::fit(&samples, MahalanobisConfig::default());
        let broken: [f64; 13] = [8.0; 13];
        assert!(detector.observe(&broken), "correlation break must raise the distance");
    }

    #[test]
    fn distance_is_zero_at_the_mean_and_grows_outward() {
        let samples = correlated_samples(300, 3);
        let detector = MahalanobisDetector::fit(&samples, MahalanobisConfig::default());
        let at_mean = *detector.mean();
        assert!(detector.distance(&at_mean) < 1e-9);
        let mut away = at_mean;
        away[0] += 100.0;
        let mut further = at_mean;
        further[0] += 1_000.0;
        assert!(detector.distance(&further) > detector.distance(&away));
    }

    #[test]
    fn non_finite_components_are_ignored_rather_than_poisoning_the_distance() {
        let samples = correlated_samples(300, 4);
        let detector = MahalanobisDetector::fit(&samples, MahalanobisConfig::default());
        let mut sample = *detector.mean();
        sample[3] = f64::NAN;
        assert!(detector.distance(&sample).is_finite());
    }

    #[test]
    fn matrix_inverse_round_trips() {
        #[rustfmt::skip]
        let matrix = vec![
            4.0, 1.0, 0.5,
            1.0, 3.0, 0.2,
            0.5, 0.2, 2.0,
        ];
        let inverse = invert(&matrix, 3).expect("well-conditioned matrix");
        for row in 0..3 {
            for col in 0..3 {
                let product: f64 = (0..3).map(|k| matrix[row * 3 + k] * inverse[k * 3 + col]).sum();
                let expected = if row == col { 1.0 } else { 0.0 };
                assert!((product - expected).abs() < 1e-9, "({row},{col}) = {product}");
            }
        }
    }

    #[test]
    fn singular_matrix_inversion_fails_gracefully() {
        let singular = vec![1.0, 2.0, 2.0, 4.0];
        assert!(invert(&singular, 2).is_none());
    }
}
