//! Online mean / standard-deviation estimation (Welford's recurrences,
//! Eq. 1–2 of the paper).

use serde::{Deserialize, Serialize};

/// Online estimator of mean and standard deviation.
///
/// Implements the recurrences the paper cites from Knuth:
/// `M_k = M_{k-1} + (x_k - M_{k-1}) / k` and
/// `S_k = S_{k-1} + (x_k - M_{k-1})(x_k - M_k)`, with
/// `sigma = sqrt(S_k / (k - 1))` for `k >= 2`.
///
/// # Examples
///
/// ```
/// use mavfi_detect::welford::Welford;
///
/// let mut stats = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    s: f64,
}

impl Welford {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.count == 1 {
            self.mean = x;
            self.s = 0.0;
        } else {
            let previous_mean = self.mean;
            self.mean += (x - previous_mean) / self.count as f64;
            self.s += (x - previous_mean) * (x - self.mean);
        }
    }

    /// Current mean (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current sample standard deviation (0 for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.s / (self.count - 1) as f64).sqrt()
        }
    }

    /// Combines two estimators as if every sample of both had been pushed
    /// into one (Chan et al.'s pairwise recurrence).  This is what lets
    /// telemetry collected by parallel campaign workers be reduced into a
    /// single baseline without replaying samples.
    ///
    /// # Examples
    ///
    /// ```
    /// use mavfi_detect::welford::Welford;
    ///
    /// let (mut left, mut right, mut all) = (Welford::new(), Welford::new(), Welford::new());
    /// for x in [1.0, 2.0, 3.0] { left.push(x); all.push(x); }
    /// for x in [10.0, 20.0] { right.push(x); all.push(x); }
    /// let merged = left.merge(&right);
    /// assert_eq!(merged.count(), all.count());
    /// assert!((merged.mean() - all.mean()).abs() < 1e-12);
    /// assert!((merged.std_dev() - all.std_dev()).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let count = self.count + other.count;
        let (n1, n2, n) = (self.count as f64, other.count as f64, count as f64);
        let delta = other.mean - self.mean;
        Welford {
            count,
            mean: self.mean + delta * (n2 / n),
            // Both `s` terms and the cross term are non-negative, so the
            // merged sum of squared deviations can never go negative.
            s: self.s + other.s + delta * delta * (n1 * n2 / n),
        }
    }

    /// Number of standard deviations `x` lies away from the mean, or 0 when
    /// the estimator has no spread yet.
    pub fn z_score(&self, x: f64) -> f64 {
        let std = self.std_dev();
        if std <= f64::EPSILON {
            0.0
        } else {
            (x - self.mean) / std
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_statistics() {
        let data = [1.5, -2.0, 0.25, 7.5, 3.25, -1.0, 2.0];
        let mut online = Welford::new();
        for &x in &data {
            online.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let variance: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((online.mean() - mean).abs() < 1e-12);
        assert!((online.std_dev() - variance.sqrt()).abs() < 1e-12);
        assert_eq!(online.count(), data.len() as u64);
    }

    #[test]
    fn few_samples_have_zero_std() {
        let mut stats = Welford::new();
        assert_eq!(stats.std_dev(), 0.0);
        stats.push(5.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.mean(), 5.0);
        assert_eq!(stats.z_score(100.0), 0.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut stats = Welford::new();
        stats.push(1.0);
        stats.push(f64::NAN);
        stats.push(f64::INFINITY);
        stats.push(3.0);
        assert_eq!(stats.count(), 2);
        assert!((stats.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats = Welford::new();
        for x in [4.0, -1.5, 2.25] {
            stats.push(x);
        }
        assert_eq!(stats.merge(&Welford::new()), stats);
        assert_eq!(Welford::new().merge(&stats), stats);
        assert_eq!(Welford::new().merge(&Welford::new()), Welford::new());
    }

    #[test]
    fn merge_matches_single_pass() {
        let first = [1.0, 2.0, 3.5, -0.5];
        let second = [100.0, 101.0];
        let (mut a, mut b, mut all) = (Welford::new(), Welford::new(), Welford::new());
        for &x in &first {
            a.push(x);
            all.push(x);
        }
        for &x in &second {
            b.push(x);
            all.push(x);
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.std_dev() - all.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn z_score_flags_outliers() {
        let mut stats = Welford::new();
        for i in 0..100 {
            stats.push((i % 5) as f64);
        }
        assert!(stats.z_score(2.0).abs() < 1.0);
        assert!(stats.z_score(1000.0) > 10.0);
    }
}
