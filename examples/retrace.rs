//! Regenerate or verify the committed golden-trace store (`tests/golden/`).
//!
//! Run with:
//!
//! - `cargo run --release --example retrace` — re-record every trace in the
//!   manifest and write it into `tests/golden/`, reporting which files
//!   changed relative to the committed bytes.
//! - `cargo run --release --example retrace -- --verify` — load the
//!   committed traces, replay each one without the sim in the loop, and
//!   exit non-zero on any divergence, digest mismatch or missing file.
//!
//! `scripts/retrace.sh` wraps the first form; `scripts/check.sh` runs the
//! second as the replay gate. See `docs/REPLAY.md` for the workflow.

use std::time::Instant;

use mavfi_suite::golden::{manifest, GoldenTraceSpec, GOLDEN_DIR};
use mavfi_suite::prelude::*;

fn describe(spec: &GoldenTraceSpec) -> String {
    let fault = match spec.fault {
        Some(fault) => format!("fault@{}", fault.trigger_tick),
        None => "golden".to_string(),
    };
    format!("{:?} seed {} {} protection {:?}", spec.environment, spec.seed, fault, spec.protection)
}

fn regenerate() -> Result<(), MavfiError> {
    std::fs::create_dir_all(GOLDEN_DIR).map_err(MavfiError::Io)?;
    let mut changed = 0usize;
    for spec in manifest() {
        let started = Instant::now();
        let (outcome, trace) = spec.record()?;
        let path = spec.path();
        let bytes = trace.to_bytes();
        let previous = std::fs::read(&path).ok();
        let same = previous.as_deref() == Some(bytes.as_slice());
        if !same {
            std::fs::write(&path, &bytes).map_err(MavfiError::Io)?;
            changed += 1;
        }
        println!(
            "  {:<32} {:<44} {:>6} ticks  {:>7} bytes  digest {:016x}  {:>5.1}s  {}",
            spec.file,
            describe(&spec),
            outcome.pipeline.ticks,
            bytes.len(),
            trace.stream_digest()?,
            started.elapsed().as_secs_f64(),
            if same { "unchanged" } else { "written" }
        );
    }
    println!("Recorded {} trace(s), {} changed.", manifest().len(), changed);
    Ok(())
}

fn verify() -> Result<usize, MavfiError> {
    let mut failures = 0usize;
    for spec in manifest() {
        let started = Instant::now();
        let trace = match MissionTrace::load(spec.path()) {
            Ok(trace) => trace,
            Err(err) => {
                println!("  {:<32} FAILED to load: {err}", spec.file);
                failures += 1;
                continue;
            }
        };
        let report = match ReplayHarness::new(&trace).replay() {
            Ok(report) => report,
            Err(err) => {
                println!("  {:<32} FAILED to replay: {err}", spec.file);
                failures += 1;
                continue;
            }
        };
        if report.is_match() {
            println!(
                "  {:<32} ok: {} ticks, output digest {:016x}, {:.1}s",
                spec.file,
                report.ticks,
                report.replayed_output_digest,
                started.elapsed().as_secs_f64()
            );
        } else {
            match &report.divergence {
                Some(divergence) => println!(
                    "  {:<32} DIVERGED at tick {} topic {}: {}",
                    spec.file,
                    divergence.tick,
                    divergence.topic.name(),
                    divergence.detail
                ),
                None => println!(
                    "  {:<32} DIGEST MISMATCH: recorded {:016x} replayed {:016x}",
                    spec.file, report.recorded_output_digest, report.replayed_output_digest
                ),
            }
            failures += 1;
        }
    }
    Ok(failures)
}

fn main() -> Result<(), MavfiError> {
    let verify_mode = std::env::args().any(|arg| arg == "--verify");
    if verify_mode {
        println!("Verifying the committed golden-trace store ({GOLDEN_DIR})...");
        let failures = verify()?;
        if failures > 0 {
            println!("{failures} golden trace(s) failed verification.");
            std::process::exit(1);
        }
        println!("All golden traces replay bit-identically.");
    } else {
        println!("Regenerating the golden-trace store into {GOLDEN_DIR}/ ...");
        regenerate()?;
    }
    Ok(())
}
