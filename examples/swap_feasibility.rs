//! SWaP feasibility study: for every airframe, companion computer and
//! protection scheme the paper considers, can the mission still be flown at
//! all within the battery and thermal limits of a micro aerial vehicle?
//!
//! This extends the paper's Fig. 8 argument ("hardware redundancy brings
//! higher compute power with higher thermal design power and weight") with
//! explicit battery-margin and thermal-throttling numbers from
//! `mavfi-platform`.
//!
//! Run with: `cargo run --release --example swap_feasibility`

use mavfi_platform::prelude::*;

fn main() {
    let model = VisualPerformanceModel::default();

    println!(
        "{:<12} {:<12} {:<12} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "airframe",
        "platform",
        "scheme",
        "time (s)",
        "energy(kJ)",
        "margin(%)",
        "throttle",
        "feasible"
    );

    for uav in UavSpec::paper_uavs() {
        let battery = BatteryModel::for_uav(&uav);
        for platform in ComputePlatform::paper_platforms() {
            let envelope = if platform.power_watts > 50.0 {
                ThermalEnvelope::actively_cooled()
            } else {
                ThermalEnvelope::embedded_carrier()
            };
            for scheme in ProtectionScheme::FIG8_SCHEMES {
                let estimate = model.evaluate(&uav, &platform, scheme);
                let verdict = battery.assess(&estimate);
                let throttle = envelope.throttle_factor(&platform, scheme);
                println!(
                    "{:<12} {:<12} {:<12} {:>9.1} {:>10.1} {:>10.1} {:>8.2}x {:>9}",
                    uav.name,
                    platform.name,
                    scheme.label(),
                    estimate.flight_time_s,
                    estimate.energy_j / 1000.0,
                    verdict.energy_margin() * 100.0,
                    throttle,
                    if verdict.feasible && throttle <= 1.0 + 1e-9 { "yes" } else { "NO" }
                );
            }
        }
        println!();
    }

    println!(
        "Redundant companion computers erode the battery margin and overrun the\n\
         thermal envelope of small airframes, which is why the paper's software\n\
         anomaly-detection scheme is the only protection that fits a micro UAV."
    );
}
