//! Frontier exploration: instead of flying to a fixed delivery goal, the
//! vehicle keeps choosing the nearest frontier (observed-free space next to
//! unobserved space) until the area is covered, building its occupancy map
//! from depth-camera frames as it goes.  This exercises the Fig. 1
//! "Frontier Exploration" kernel together with the A* planner extension.
//!
//! Run with: `cargo run --release --example exploration_mission`

use mavfi::prelude::*;

fn main() {
    let environment = EnvironmentKind::Sparse.build(21);
    let bounds = environment.bounds();
    let start = environment.start();
    let mut world = World::new(
        environment,
        QuadrotorParams::default(),
        PowerModel::default(),
        MissionConfig { max_mission_time: 600.0, ..MissionConfig::default() },
    );

    let camera = DepthCamera::default();
    let mut occupancy = OccupancyGrid::new(0.5);
    let mut map = ExplorationMap::new(bounds, 6.0);
    let frontier_planner = FrontierPlanner { altitude: start.z.max(2.0), min_goal_distance: 4.0 };
    let planner_config = PlannerConfig::for_bounds(bounds).with_seed(21);

    let dt = 0.1;
    let sensing_radius = 12.0;
    let cruise_speed = 3.0;
    let mut current_path: Vec<Vec3> = Vec::new();
    let mut goals_visited = 0;

    println!(
        "Exploring a {:.0} m x {:.0} m area...",
        bounds.max.x - bounds.min.x,
        bounds.max.y - bounds.min.y
    );
    while world.status() == MissionStatus::InProgress {
        let pose = world.vehicle().pose();
        let position = world.vehicle().state().position;

        // Perception: depth frame -> occupancy map -> coverage map.
        let frame = camera.capture(world.environment(), &pose);
        for point in &frame.points {
            occupancy.insert_point(*point);
        }
        map.observe(position, sensing_radius, &occupancy);

        // Planning: pick a frontier goal and plan a path to it when needed.
        if current_path.is_empty() {
            match frontier_planner.next_goal(&map, position) {
                Some(goal) => {
                    let mut planner = AStarPlanner::new(planner_config);
                    if let Some(path) = planner.plan(&occupancy, position, goal) {
                        current_path = path.waypoints;
                        goals_visited += 1;
                    } else {
                        // Unreachable frontier: mark progress by observing it
                        // from afar and move on next tick.
                        map.observe(goal, 3.0, &occupancy);
                    }
                }
                None => break, // fully explored
            }
        }

        // Control: fly toward the next way-point of the current path.
        while let Some(&next) = current_path.first() {
            if position.distance(next) < 1.5 {
                current_path.remove(0);
            } else {
                break;
            }
        }
        let command = match current_path.first() {
            Some(&target) => {
                let direction = target - position;
                let distance = direction.norm().max(1e-9);
                // Keep the depth camera pointed along the direction of travel
                // so the occupancy map grows where the vehicle is heading.
                let desired_yaw = direction.y.atan2(direction.x);
                let mut yaw_error = desired_yaw - pose.yaw;
                while yaw_error > std::f64::consts::PI {
                    yaw_error -= 2.0 * std::f64::consts::PI;
                }
                while yaw_error < -std::f64::consts::PI {
                    yaw_error += 2.0 * std::f64::consts::PI;
                }
                let speed = if yaw_error.abs() > 0.8 { 0.8 } else { cruise_speed };
                FlightCommand::new(direction * (speed / distance), yaw_error.clamp(-1.2, 1.2))
            }
            None => FlightCommand::HOLD,
        };
        world.step(&command, dt);

        let steps = (world.elapsed() / dt).round() as u64;
        if steps % 100 == 0 {
            println!(
                "  t = {:>5.1} s   coverage = {:>5.1}%   frontiers = {:<3}  goals visited = {}",
                world.elapsed(),
                map.coverage() * 100.0,
                map.frontiers().len(),
                goals_visited
            );
        }
    }

    println!();
    println!("Exploration finished:");
    println!("  status             : {:?}", world.status());
    println!("  coverage           : {:.1}%", map.coverage() * 100.0);
    println!("  exploration goals  : {goals_visited}");
    println!("  flight time        : {:.1} s", world.elapsed());
    println!("  distance flown     : {:.1} m", world.distance_travelled());
    println!("  mission energy     : {:.1} kJ", world.energy_joules() / 1000.0);
    println!("  occupied voxels    : {}", occupancy.occupied_count());
}
