//! Beyond the paper's one-shot transient model: intermittent and permanent
//! faults.
//!
//! The paper injects exactly one single-bit upset per mission.  Real silent
//! data corruption ("cores that don't count") often recurs: the same
//! marginal circuit corrupts a value every so often, or a register sticks
//! permanently.  This example drives the closed PPC loop by hand with a
//! [`RecurringInjector`] chained in front of the autoencoder detector and
//! compares the quality of flight across recurrence patterns.
//!
//! Run with: `cargo run --release --example intermittent_faults`

use mavfi::prelude::*;

/// Flies one mission with an optional recurring fault and optional AAD
/// protection, returning (status, flight time, alarms, corruptions).
fn fly(
    spec: MissionSpec,
    fault: Option<RecurringFaultSpec>,
    detectors: Option<&TrainedDetectors>,
) -> (MissionStatus, f64, u64, u64) {
    let environment = spec.environment.build(spec.seed);
    let config = PpcConfig::new(spec.planner, environment.bounds(), spec.seed);
    let mut pipeline = PpcPipeline::new(config, environment.start(), environment.goal());
    let camera = DepthCamera::default();
    let mut world = World::new(environment, spec.vehicle, PowerModel::default(), spec.mission);

    let mut injector = fault.map(RecurringInjector::new);
    let mut detector = detectors
        .map(|trained| DetectorTap::new(DetectionScheme::Autoencoder(trained.aad.clone())));

    let dt = spec.control_period;
    while world.status() == MissionStatus::InProgress {
        let frame = camera.capture(world.environment(), &world.vehicle().pose());
        let command = match (&mut injector, &mut detector) {
            (Some(injector), Some(detector)) => {
                let mut tap = ChainTap::new(&mut *injector, &mut *detector);
                pipeline.tick(&frame, &world.vehicle().state(), dt, &mut tap).command
            }
            (Some(injector), None) => {
                pipeline.tick(&frame, &world.vehicle().state(), dt, &mut *injector).command
            }
            (None, Some(detector)) => {
                pipeline.tick(&frame, &world.vehicle().state(), dt, &mut *detector).command
            }
            (None, None) => {
                pipeline.tick(&frame, &world.vehicle().state(), dt, &mut NoopTap).command
            }
        };
        world.step(&command, dt);
    }

    let alarms = detector.map(|d| d.stats().total_alarms()).unwrap_or(0);
    let corruptions = injector.map(|i| i.occurrence_count()).unwrap_or(0);
    (world.status(), world.elapsed(), alarms, corruptions)
}

fn main() {
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 52).with_time_budget(300.0);

    println!("Training the autoencoder detector on error-free missions...");
    let training =
        TrainingSpec { missions: 2, base_seed: 640, mission_time_budget: 30.0, epochs: 10 };
    let (detectors, _) = train_detectors(&training);

    let base = FaultSpec {
        target: InjectionTarget::State(StateField::WaypointX),
        model: FaultModel::single_bit_in(BitField::Exponent),
        trigger_tick: 40,
        seed: 9_001,
    };
    let scenarios: Vec<(&str, Option<RecurringFaultSpec>)> = vec![
        ("golden (no fault)", None),
        ("transient (one-shot, paper model)", Some(RecurringFaultSpec::transient(base))),
        ("intermittent (every 200 ticks)", Some(RecurringFaultSpec::intermittent(base, 200, 0))),
        ("permanent (every tick)", Some(RecurringFaultSpec::permanent(base))),
    ];

    println!();
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "scenario", "status", "time (s)", "corruptions", "", "AAD status", "AAD time (s)"
    );
    for (name, fault) in scenarios {
        let (status, time, _, corruptions) = fly(spec, fault, None);
        let (protected_status, protected_time, alarms, _) = fly(spec, fault, Some(&detectors));
        println!(
            "{:<38} {:>12} {:>12.1} {:>12} {:>12} | {:>12} {:>12.1}   ({alarms} alarms)",
            name,
            format!("{status:?}"),
            time,
            corruptions,
            "",
            format!("{protected_status:?}"),
            protected_time,
        );
    }

    println!();
    println!(
        "The one-shot transient matches the paper's model; recurring faults degrade the flight \
         further, and the anomaly detector keeps absorbing them because detection is stateless \
         across occurrences."
    );
}
