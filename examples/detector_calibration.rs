//! Detector calibration and ablation: sweep the Gaussian `n_sigma` and the
//! autoencoder threshold margin, and compare five detector families
//! (Gaussian, EWMA, static range, Mahalanobis, autoencoder) on labelled
//! corruption streams derived from real error-free telemetry.
//!
//! Run with: `cargo run --release --example detector_calibration`

use mavfi::experiments::ablation::{self, AblationConfig};
use mavfi::MavfiError;

fn main() -> Result<(), MavfiError> {
    // A small but real configuration: telemetry comes from actual missions
    // in randomized environments, exactly like detector training in §V of
    // the paper.  Increase `training_missions` / `epochs` for smoother
    // curves.
    let config = AblationConfig {
        training_missions: 2,
        mission_time_budget: 40.0,
        epochs: 15,
        ..AblationConfig::default()
    };

    println!("Collecting error-free telemetry and fitting all detector families...");
    let result = ablation::run(&config)?;

    println!();
    println!("{}", result.to_table());

    if let (Some(gad), Some(aad)) =
        (result.detector("Gaussian (GAD)"), result.detector("Autoencoder (AAD)"))
    {
        println!(
            "On in-range correlation-breaking corruption the autoencoder's AUC ({:.3}) vs the \
             per-field Gaussian's ({:.3}) shows why the paper's AAD detects anomalies GAD cannot.",
            aad.auc_correlation, gad.auc_correlation
        );
    }
    Ok(())
}
