//! Per-kernel resilience sweep: a reduced version of the paper's Fig. 3
//! study (flight time and success rate when a single bit flip lands in each
//! PPC kernel).
//!
//! Run with: `cargo run --release --example resilience_sweep`
//!
//! Set `MAVFI_RUNS` to change the number of injections per kernel
//! (default 3).

use mavfi::experiments::fig3::{self, Fig3Config};
use mavfi::prelude::*;

fn main() -> Result<(), MavfiError> {
    let runs: usize = std::env::var("MAVFI_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let config = Fig3Config {
        runs_per_kernel: runs,
        golden_runs: runs,
        mission_time_budget: 300.0,
        ..Fig3Config::default()
    };
    println!(
        "Injecting {} single-bit faults into each of {} kernels in the {} environment...",
        config.runs_per_kernel,
        KernelId::FIG3_KERNELS.len(),
        config.environment.label()
    );
    let result = fig3::run(&config)?;
    println!("{}", result.to_table());
    println!(
        "Planning/control excess worst-case inflation over perception kernels: {:+.1}%",
        result.planning_control_excess_inflation() * 100.0
    );
    Ok(())
}
