//! Platform and redundancy comparison: regenerates the paper's Fig. 8
//! (DMR/TMR versus anomaly detection on two airframes) and the Fig. 9
//! platform table (i9 versus Cortex-A57) from the cyber-physical visual
//! performance model.
//!
//! Run with: `cargo run --release --example platform_comparison`

use mavfi::experiments::{fig8, fig9};

fn main() {
    println!("=== Fig. 8: hardware redundancy vs software anomaly detection ===");
    let fig8_result = fig8::run(&fig8::Fig8Config::default());
    println!("{}", fig8_result.to_table());
    if let (Some(airsim), Some(spark)) =
        (fig8_result.tmr_energy_ratio("AirSim UAV"), fig8_result.tmr_energy_ratio("DJI Spark"))
    {
        println!(
            "TMR costs {airsim:.2}x the energy of anomaly D&R on the AirSim UAV and {spark:.2}x on the DJI Spark."
        );
    }

    println!();
    println!("=== Fig. 9: desktop vs embedded companion computer ===");
    let fig9_result = fig9::run(&fig9::Fig9Config::default(), None);
    println!("{}", fig9_result.to_table());
    println!(
        "The embedded platform flies the mission {:.1}x slower than the desktop platform.",
        fig9_result.embedded_slowdown()
    );
}
