//! Quickstart: fly one error-free mission and one mission with a single-bit
//! fault in the planning stage, and compare the quality-of-flight metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use mavfi::prelude::*;

fn main() -> Result<(), MavfiError> {
    // A package-delivery mission in the generated Sparse environment.
    let spec = MissionSpec::new(EnvironmentKind::Sparse, 42).with_time_budget(300.0);
    let runner = MissionRunner::new(spec);

    println!("Flying the golden (error-free) mission...");
    let golden = runner.run_golden();
    println!(
        "  status: {:?}, flight time: {:.1} s, energy: {:.1} kJ, distance: {:.1} m",
        golden.qof.status,
        golden.qof.flight_time_s,
        golden.qof.energy_j / 1000.0,
        golden.qof.distance_m
    );

    println!("Flying the same mission with a one-time single-bit fault in the planning stage...");
    let fault = FaultSpec::new(InjectionTarget::Stage(Stage::Planning), 60, 7);
    let faulty = runner.run(Some(fault), Protection::None, None)?;
    println!(
        "  status: {:?}, flight time: {:.1} s, energy: {:.1} kJ",
        faulty.qof.status,
        faulty.qof.flight_time_s,
        faulty.qof.energy_j / 1000.0
    );
    if let Some(record) = &faulty.fault {
        println!(
            "  injected fault: tick {}, target {}, {:?} bit, {} -> {}",
            record.tick,
            record.target,
            record.detail.field,
            record.detail.original,
            record.detail.corrupted
        );
    }

    let inflation =
        (faulty.qof.flight_time_s - golden.qof.flight_time_s) / golden.qof.flight_time_s.max(1e-9);
    println!("Flight-time change caused by the fault: {:+.1}%", inflation * 100.0);
    Ok(())
}
