//! Package delivery with detection and recovery: the Fig. 7 scenario.
//!
//! Flies the Dense environment three times — error-free, with a way-point
//! corruption, and with the same corruption supervised by the
//! autoencoder-based detection & recovery scheme — and prints the resulting
//! trajectories as CSV plus a comparison table.
//!
//! Run with: `cargo run --release --example package_delivery`

use mavfi::experiments::fig7::{self, Fig7Config};
use mavfi::prelude::*;

fn main() -> Result<(), MavfiError> {
    println!("Training the detectors on error-free missions in randomized environments...");
    let training = TrainingSpec {
        missions: 2,
        mission_time_budget: 40.0,
        epochs: 15,
        ..TrainingSpec::default()
    };
    let (detectors, telemetry) = train_detectors(&training);
    println!(
        "  {} telemetry samples, autoencoder threshold {:.4}",
        telemetry.len(),
        detectors.aad.threshold()
    );

    let config = Fig7Config { mission_time_budget: 300.0, ..Fig7Config::default() };
    println!(
        "Flying the {} environment with a fault in the {} stage...",
        config.environment.label(),
        config.fault_stage.label()
    );
    let result = fig7::run(&config, &detectors)?;

    println!("{}", result.to_table());
    println!("Golden trajectory (CSV, first 5 rows):");
    for line in result.golden.to_csv().lines().take(6) {
        println!("  {line}");
    }
    println!(
        "Faulty trajectory has {} samples; recovered trajectory has {} samples.",
        result.faulty.trail.len(),
        result.recovered.trail.len()
    );
    Ok(())
}
