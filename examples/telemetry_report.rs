//! Telemetry report: fly an instrumented mission and an instrumented
//! campaign, and print kernel latency percentiles, the fault → detect →
//! recover timeline and the campaign-wide rollup.
//!
//! Run with: `cargo run --release --example telemetry_report`
//!
//! Everything printed under "deterministic" is bit-identical across runs
//! and worker counts; only the wall-clock histograms vary with the machine.
//! See `docs/OBSERVABILITY.md` for the design rules.

use mavfi::prelude::*;

fn main() -> Result<(), MavfiError> {
    // --- One instrumented mission with a fault under the AAD scheme ---
    let training =
        TrainingSpec { missions: 1, base_seed: 77, mission_time_budget: 25.0, epochs: 5 };
    let scheme = SchemeConfig::cached(EnvironmentKind::Randomized, training);
    let detectors = scheme.detectors();

    let spec = MissionSpec::new(EnvironmentKind::Sparse, 33).with_time_budget(120.0);
    let fault = FaultSpec {
        target: InjectionTarget::State(StateField::WaypointX),
        model: FaultModel::single_bit_in(BitField::Exponent),
        trigger_tick: 50,
        seed: 9,
    };
    let mut sink = MissionTelemetry::new();
    let outcome = MissionRunner::new(spec).run_instrumented(
        Some(fault),
        Protection::Autoencoder,
        Some(&detectors),
        &mut sink,
    )?;

    println!("=== Instrumented mission (Sparse, WaypointX exponent flip, D&R(A)) ===");
    println!("status {:?} in {:.1} s", outcome.qof.status, outcome.qof.flight_time_s);
    if let Some(ticks) = sink.detection_latency_ticks() {
        println!("detection latency: {ticks} ticks after injection");
    }
    if let Some(ticks) = sink.recovery_latency_ticks() {
        println!("recovery latency:  {ticks} ticks after injection");
    }

    println!("\nper-kernel wall-clock latency (ns), once warm:");
    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "calls", "p50", "p90", "p99", "max"
    );
    for kernel in KernelId::ALL {
        let histogram = sink.kernel_latency(kernel);
        if histogram.count() == 0 {
            continue;
        }
        println!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
            format!("{kernel:?}"),
            histogram.count(),
            histogram.p50(),
            histogram.p90(),
            histogram.p99(),
            histogram.max_ns(),
        );
    }

    println!("\nfirst timeline events (tick @ sim seconds):");
    for event in sink.timeline().events().iter().take(12) {
        println!("  tick {:>5} @ {:>7.2} s  {:?}", event.tick, event.sim_time_s, event.event);
    }

    let report = sink.into_report(&outcome.pipeline);
    println!(
        "\nmission report: {} events ({} dropped), cache hit rate {:.1}%",
        report.events.len(),
        report.events_dropped,
        report.counters.cache_hit_rate() * 100.0,
    );

    // --- A small instrumented campaign, merged into one rollup ---
    let config = CampaignConfig {
        environment: EnvironmentKind::Sparse,
        golden_runs: 1,
        injections_per_stage: 1,
        base_seed: 7,
        mission_time_budget: 60.0,
    };
    let (campaign, rollup) = run_campaign_instrumented(&config, &scheme, 0)?;

    println!("\n=== Campaign rollup (1 golden + 3 injections x 3 settings) ===");
    println!(
        "deterministic: {} missions, {} ticks, {} replans, digest {:#018x}",
        rollup.missions, rollup.counters.ticks, rollup.counters.replans, rollup.timeline_digest,
    );
    for stage in Stage::ALL {
        let detection = rollup.detection_latency[stage.index()];
        if detection.samples > 0 {
            println!(
                "  {stage:?}: mean detection latency {:.1} ticks over {} faults",
                detection.mean(),
                detection.samples,
            );
        }
    }
    println!(
        "wall clock: {} workers used, jobs per worker {:?}, fold stalls {}",
        rollup.wall_clock.worker_jobs.len(),
        rollup.wall_clock.worker_jobs,
        rollup.wall_clock.fold_stalls,
    );
    println!(
        "campaign D&R(A) success rate: {:.0}%",
        campaign.autoencoder.summary.success_rate * 100.0
    );

    // The full rollup serialises to JSON for offline analysis.
    println!(
        "\nserialised rollup is {} bytes of JSON",
        serde_json::to_string(&rollup).unwrap().len()
    );
    Ok(())
}
