//! Campaign-as-a-service demo: run a [`CampaignServer`] on the in-repo
//! middleware, submit campaigns from a typed client, stream incremental
//! progress, kill the server mid-flight and resume from its checkpoints.
//!
//! Run with: `cargo run --release --example campaign_server`
//!
//! With `--smoke` the example instead runs the CI acceptance loop: submit a
//! tiny campaign, kill the server after one checkpointed stride, resume on
//! a fresh server over the same checkpoint directory, and verify that the
//! final result is byte-identical to both an uninterrupted serve and the
//! library `run_campaign` call — exiting non-zero on any mismatch.
//! `scripts/check.sh` runs this mode.
//!
//! See `docs/SERVING.md` for the protocol, determinism contract and
//! failure taxonomy.

use std::path::PathBuf;

use mavfi::prelude::*;
use mavfi_middleware::prelude::*;

/// A small five-job campaign: 2 golden + 3 injections in 3 chunks of 2.
fn request_for(environment: EnvironmentKind, seed: u64) -> CampaignRequest {
    let mut request = CampaignRequest::quick(environment, seed);
    request.config.golden_runs = 2;
    request.config.injections_per_stage = 1;
    request.config.mission_time_budget = 90.0;
    request.batch_size = 2;
    request
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mavfi_example_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Steps the server until `job_id` completes, draining progress updates.
fn drive(
    server: &CampaignServer,
    bus: &Bus,
    client: &CampaignClient,
    job_id: u64,
) -> std::sync::Arc<EnvironmentCampaign> {
    loop {
        if let Some(result) = client.result(job_id).expect("job is known") {
            return result;
        }
        server.step_once(bus).expect("server step");
    }
}

fn json(campaign: &EnvironmentCampaign) -> String {
    serde_json::to_string(campaign).expect("serialize campaign")
}

fn print_campaign(campaign: &EnvironmentCampaign) {
    println!("  {:<16} {:>8} {:>10} {:>12}", "setting", "runs", "success", "mean time");
    for setting in campaign.settings() {
        println!(
            "  {:<16} {:>8} {:>9.0}% {:>10.1} s",
            setting.label,
            setting.summary.runs,
            setting.summary.success_rate * 100.0,
            setting.summary.mean_flight_time_s,
        );
    }
}

/// The CI acceptance loop: kill-resume equals uninterrupted equals library.
fn smoke() -> i32 {
    let request = request_for(EnvironmentKind::Farm, 91);
    let scheme = SchemeConfig::cached(request.training_environment, request.training);
    let library = CampaignExecutor::new(2)
        .with_batch_size(request.batch_size)
        .run_campaign(&request.config, &scheme)
        .expect("library campaign");
    let reference = json(&library);

    // Uninterrupted serve.
    let uninterrupted_dir = fresh_dir("smoke_ref");
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(2), uninterrupted_dir.clone())
        .expect("create server");
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let ticket = client.submit(&request).expect("submit");
    let uninterrupted = drive(&server, &bus, &client, ticket.job_id);
    if json(&uninterrupted) != reference {
        eprintln!("smoke FAILED: uninterrupted serve diverged from run_campaign");
        return 1;
    }

    // Kill after one stride, then resume on a fresh server + bus.
    let dir = fresh_dir("smoke_resume");
    let job_id = {
        let bus = Bus::new();
        let server =
            CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("create server");
        server.attach(&bus);
        let client = CampaignClient::new(&bus);
        let ticket = client.submit(&request).expect("submit");
        server.step_once(&bus).expect("first stride");
        ticket.job_id
        // The server, bus and client drop here: the "kill".
    };
    let bus = Bus::new();
    let server =
        CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("restarted server");
    if server.resumed_job_ids() != vec![job_id] {
        eprintln!("smoke FAILED: restarted server did not resume the checkpointed job");
        return 1;
    }
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let resumed = drive(&server, &bus, &client, job_id);
    if json(&resumed) != reference {
        eprintln!("smoke FAILED: resumed serve diverged from run_campaign");
        return 1;
    }

    let _ = std::fs::remove_dir_all(&uninterrupted_dir);
    let _ = std::fs::remove_dir_all(&dir);
    println!("smoke ok: kill/resume and uninterrupted serves are byte-identical to run_campaign");
    0
}

fn demo() {
    let dir = fresh_dir("demo");
    println!("=== Campaign server demo (checkpoints in {}) ===", dir.display());

    let requests = [request_for(EnvironmentKind::Farm, 7), request_for(EnvironmentKind::Sparse, 8)];

    // Phase 1: submit both campaigns, then "crash" after a few strides.
    let bus = Bus::new();
    let server = CampaignServer::new(CampaignExecutor::new(2), dir.clone())
        .expect("create server")
        .with_checkpoint_stride(1);
    server.attach(&bus);
    let client = CampaignClient::new(&bus);
    let tickets: Vec<JobTicket> =
        requests.iter().map(|request| client.submit(request).expect("submit")).collect();
    let subscribers: Vec<_> =
        tickets.iter().map(|ticket| client.subscribe_progress(ticket.job_id)).collect();
    for ticket in &tickets {
        println!(
            "submitted job {:016x}: {} chunks, streaming on {}",
            ticket.job_id, ticket.chunks_total, ticket.progress_topic
        );
    }

    for _ in 0..3 {
        server.step_once(&bus).expect("server step");
    }
    for subscriber in &subscribers {
        for update in subscriber.drain() {
            println!(
                "progress job {:016x}: {}/{} chunks, {} runs folded",
                update.job_id, update.chunks_done, update.chunks_total, update.jobs_folded
            );
        }
    }
    println!("--- killing the server after 3 strides (checkpoints survive) ---");
    drop(server);
    CampaignServer::detach(&bus);

    // Phase 2: a fresh server on the same directory resumes both jobs.
    let server =
        CampaignServer::new(CampaignExecutor::new(2), dir.clone()).expect("restarted server");
    for job_id in server.resumed_job_ids() {
        println!("resumed job {job_id:016x} from its checkpoint");
    }
    server.attach(&bus);
    for ticket in &tickets {
        let campaign = drive(&server, &bus, &client, ticket.job_id);
        println!("\njob {:016x} ({:?}) complete:", ticket.job_id, campaign.environment);
        print_campaign(&campaign);
    }

    let counters = server.counters();
    println!(
        "\nserver counters: {} resumed, {} chunks executed, {} checkpoints written, \
         {} progress updates",
        counters.jobs_resumed,
        counters.chunks_executed,
        counters.checkpoints_written,
        counters.progress_updates,
    );
    println!(
        "(wall-clock and serving history are stripped by TelemetryReport::deterministic_view; \
         results are byte-identical to `run_campaign` — see tests/server_determinism.rs)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    if std::env::args().any(|arg| arg == "--smoke") {
        std::process::exit(smoke());
    }
    demo();
}
