//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde implementation (see `vendor/serde`) whose data model is a
//! JSON-like `Value` tree.  This crate supplies the matching derive macros.
//! They are hand-rolled on top of the compiler's `proc_macro` API — no `syn`,
//! no `quote` — and support exactly the shapes the workspace uses:
//!
//! * structs with named fields and no generic parameters,
//! * unit structs,
//! * enums whose variants are unit, tuple or struct-like.
//!
//! Generic types are rejected with a compile-time panic so a future use shows
//! up as a clear error rather than a silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item a derive was attached to.
enum Shape {
    /// `struct Name;`
    UnitStruct,
    /// `struct Name { a: A, b: B }` — field names in declaration order.
    Struct(Vec<String>),
    /// `enum Name { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
}

/// Consumes tokens up to (and including) a comma at angle-bracket depth zero.
/// Returns `false` when the stream ended instead.
fn skip_to_top_level_comma(iter: &mut TokenIter) -> bool {
    let mut angle_depth = 0i64;
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return true,
                _ => {}
            },
            Some(_) => {}
            None => return false,
        }
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// variant bodies), returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stub derive: expected field name, found `{other}`"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde stub derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        fields.push(name);
        if !skip_to_top_level_comma(&mut iter) {
            break;
        }
    }
    fields
}

/// Counts top-level comma-separated elements in a tuple variant body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut iter = body.into_iter().peekable();
    if iter.peek().is_none() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i64;
    let mut saw_tokens_since_comma = true;
    for token in iter {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    saw_tokens_since_comma = false;
                }
                _ => saw_tokens_since_comma = true,
            },
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        // Trailing comma.
        arity -= 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stub derive: expected variant name, found `{other}`"),
            None => break,
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if !skip_to_top_level_comma(&mut iter) {
            break;
        }
    }
    variants
}

/// Parses the derive input down to `(type name, shape)`.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde stub derive: generic type `{name}` is not supported; write the impl by hand"
            );
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
            {
                panic!("serde stub derive: tuple struct `{name}` is not supported; write the impl by hand. ({:?})", g.stream().to_string());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => return (name, Shape::UnitStruct),
            Some(_) => continue,
            None => panic!("serde stub derive: unexpected end of input for `{name}`"),
        }
    };
    match keyword.as_str() {
        "struct" => (name, Shape::Struct(parse_named_fields(body))),
        "enum" => (name, Shape::Enum(parse_variants(body))),
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` — emits `impl ::serde::Serialize` building a
/// `Value` tree mirroring serde_json's default representation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Struct(fields) => {
            let mut entries = String::new();
            for field in fields {
                entries.push_str(&format!(
                    "(\"{field}\".to_string(), ::serde::Serialize::to_value(&self.{field})),"
                ));
            }
            format!("::serde::Value::Map(vec![{entries}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binders.join(","),
                            elems.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(",");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(",")
                        ));
                    }
                }
            }
            // A defensive arm for `#[non_exhaustive]`-style additions; all
            // current enums are fully covered above.
            format!(
                "#[allow(unreachable_patterns)] match self {{ {arms} _ => ::serde::Value::Null, }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde stub derive: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` — emits `impl ::serde::Deserialize` reading the
/// same `Value` tree the Serialize derive produces.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&format!("{field}: ::serde::from_field(__map, \"{field}\")?,"));
            }
            format!(
                "let __map = __value.as_map().ok_or_else(|| ::serde::Error::msg(\
                     \"expected a map for struct {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    VariantKind::Tuple(arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ \
                                 let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::msg(\
                                     \"expected a sequence for variant {name}::{v}\"))?; \
                                 if __seq.len() != {arity} {{ return ::std::result::Result::Err(\
                                     ::serde::Error::msg(\"wrong arity for variant {name}::{v}\")); }} \
                                 ::std::result::Result::Ok({name}::{v}({})) \
                             }}",
                            elems.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::from_field(__vmap, \"{f}\")?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ \
                                 let __vmap = __inner.as_map().ok_or_else(|| ::serde::Error::msg(\
                                     \"expected a map for variant {name}::{v}\"))?; \
                                 ::std::result::Result::Ok({name}::{v} {{ {} }}) \
                             }}",
                            inits.join(",")
                        ));
                    }
                }
            }
            format!(
                "match __value {{ \
                     ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                             \"unknown unit variant `{{__other}}` for enum {name}\"))), \
                     }}, \
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                         let (__tag, __inner) = &__m[0]; \
                         match __tag.as_str() {{ \
                             {data_arms} \
                             __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` for enum {name}\"))), \
                         }} \
                     }} \
                     _ => ::std::result::Result::Err(::serde::Error::msg(\
                         \"expected a string or single-entry map for enum {name}\")), \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {name} {{ \
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                 #[allow(unused_variables)] let __value = __value; {body} \
             }} \
         }}"
    )
    .parse()
    .expect("serde stub derive: generated Deserialize impl failed to parse")
}
