//! Offline stand-in for `rand`.
//!
//! Provides the subset of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{choose, shuffle}` — backed by a deterministic
//! xoshiro256++ generator seeded through SplitMix64.  Streams are stable
//! across platforms and releases, which the fault-injection campaigns rely
//! on for reproducibility (they do not need to match upstream rand's
//! streams, only their own).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (fixed 32-byte seed, matching `StdRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a full 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut splitmix = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix.next_u64().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Types uniformly samplable between two bounds (rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].  The single generic impl per
/// range shape matters: it lets type inference flow from the surrounding
/// expression into integer range literals, as with real rand.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb, 1];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Picks a uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let n: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&n));
            let u: usize = rng.gen_range(5..10);
            assert!((5..10).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut data: Vec<u32> = (0..20).collect();
        let original = data.clone();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(data.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
