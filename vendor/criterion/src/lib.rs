//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the bench targets use
//! (`Criterion::bench_function`, `benchmark_group`, `group.sample_size`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros) with a
//! plain wall-clock timer: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and prints min/mean timings to stdout.  No
//! statistics, plots or baselines — just enough to execute the paper's
//! experiment drivers and report per-iteration cost.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group sharing configuration, mirroring criterion's group API.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    pending_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording one batch per configured sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        for _ in 0..self.pending_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher =
        Bencher { samples: Vec::new(), iters_per_sample: 1, pending_samples: sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!("{id}: mean {mean:?}, min {min:?} ({} samples)", bencher.samples.len());
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u32;
        Criterion::default().bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 10);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("inner", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 samples + 1 warm-up.
        assert_eq!(runs, 4);
    }
}
