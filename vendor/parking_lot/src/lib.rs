//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's poison-free API:
//! `lock()`, `read()` and `write()` return guards directly, recovering the
//! inner data if a previous holder panicked.

use std::fmt;
use std::sync::{self, TryLockError};

/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-export of the std guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the std guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the guarded value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the guarded value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
