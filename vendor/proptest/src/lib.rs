//! Offline stand-in for `proptest`.
//!
//! A deterministic mini property-testing engine exposing the slice of the
//! proptest API the workspace's test suites use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings,
//! * [`Strategy`] implementations for numeric ranges, tuples (up to six
//!   elements), [`Just`], [`any`] and [`collection::vec`],
//! * `prop_map`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`,
//! * committed regression seeds: each test first replays the seeds listed in
//!   `proptest-regressions/<source-file-stem>.txt` under the crate root,
//!   then runs `PROPTEST_CASES` (default 64) freshly derived cases.
//!
//! There is no shrinking: a failure reports the generating seed, which can be
//! committed to the regression file to pin the exact case forever.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating one test case.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the generator for a given case seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }
}

/// Why a test-case closure did not return success.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring proptest's `prop_map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `predicate` (best effort: after 100
    /// rejected draws the last value is returned and the case will usually be
    /// rejected again by the property's own `prop_assume!`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, predicate }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100 {
            let value = self.inner.sample(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter `{}` rejected 100 consecutive draws", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                // Occasionally pin the endpoints so boundary behaviour is
                // exercised even with few cases.
                match rng.index(0, 32) {
                    0 => self.start,
                    _ => self.start + unit * (self.end - self.start),
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                match rng.index(0, 32) {
                    0 => start,
                    1 => end,
                    _ => start + (rng.unit_f64() as $t) * (end - start),
                }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns cover the full spectrum (subnormals, infinities,
        // NaNs); properties needing finite values guard with prop_assume!.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The whole-domain strategy for a type: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { lo: exact, hi_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self { lo: range.start, hi_exclusive: range.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            Self { lo: *range.start(), hi_exclusive: range.end() + 1 }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.index(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Default number of freshly generated cases per property.
const DEFAULT_CASES: u64 = 64;
/// Give up when assumptions reject this multiple of the case budget.
const MAX_REJECT_FACTOR: u64 = 20;

/// Per-block configuration, set with `#![proptest_config(...)]` as the
/// first item inside [`proptest!`].
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property (regression seeds replay on
    /// top of this budget).
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// The default honours the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        Self { cases: case_budget() as u32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn regression_file(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
}

/// Reads committed regression seeds for one property.
///
/// File format, one entry per line: `property_name = seed`, `#` comments.
fn regression_seeds(path: &Path, fn_name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in contents.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, seed)) = line.split_once('=') {
            if name.trim() == fn_name {
                if let Ok(seed) = seed.trim().parse::<u64>() {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

fn case_budget() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// Drives one property with the default configuration.  Called by the
/// [`proptest!`] macro — not public API in real proptest, but harmless to
/// expose here.
pub fn run_property<F>(manifest_dir: &str, source_file: &str, fn_name: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_property_with(ProptestConfig::default(), manifest_dir, source_file, fn_name, case);
}

/// Drives one property: replays committed regression seeds, then runs the
/// configured number of derived-seed cases.
pub fn run_property_with<F>(
    config: ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    fn_name: &str,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let regressions = regression_file(manifest_dir, source_file);
    let mut run_seed = |seed: u64, origin: &str| {
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) => false,
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{fn_name}` failed ({origin}, seed {seed}): {message}\n\
                 pin it by adding `{fn_name} = {seed}` to {}",
                regressions.display()
            ),
        }
    };

    for seed in regression_seeds(&regressions, fn_name) {
        run_seed(seed, "regression");
    }

    let budget = u64::from(config.cases);
    let base = fnv1a(fn_name) ^ fnv1a(source_file);
    let mut accepted = 0u64;
    let mut attempt = 0u64;
    while accepted < budget {
        if attempt > budget * MAX_REJECT_FACTOR {
            panic!(
                "property `{fn_name}` rejected too many cases \
                 ({accepted}/{budget} accepted after {attempt} attempts)"
            );
        }
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
        if run_seed(seed, "generated") {
            accepted += 1;
        }
        attempt += 1;
    }
}

/// Declares property-based tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property_with(
                $config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    let __inputs =
                        [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+].join(", ");
                    let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case().map_err(|err| match err {
                        $crate::TestCaseError::Fail(message) => $crate::TestCaseError::Fail(
                            format!("{message}\n  inputs: {__inputs}"),
                        ),
                        reject => reject,
                    })
                },
            );
        }
    )*};
}

/// Fails the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($condition)
            )));
        }
    };
    ($condition:expr, $($fmt:tt)+) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (redrawn, not a failure) unless `condition`.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($condition).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in -5.0f64..5.0, n in 1u32..10, i in 0i32..=3) {
            prop_assert!((-5.0..5.0).contains(&v));
            prop_assert!((1..10).contains(&n));
            prop_assert!((0..=3).contains(&i));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, 10u8..14).prop_map(|(a, b)| (b, a)),
        ) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
        }

        #[test]
        fn vec_strategy_respects_size(items in collection::vec(0u8..255, 2..6)) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(v in any::<u64>()) {
            prop_assume!(v.is_multiple_of(2));
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            super::run_property("/tmp", "det.rs", "det_case", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
