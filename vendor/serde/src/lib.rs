//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde replacement.  Instead of serde's visitor-based zero-copy
//! architecture, this crate uses a concrete JSON-like [`Value`] tree as its
//! data model:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] reconstructs a type from a [`Value`],
//! * the derive macros (re-exported from `serde_derive`) generate both for
//!   plain structs and enums,
//! * the sibling `serde_json` vendor crate maps [`Value`] to and from JSON
//!   text.
//!
//! The public names (`serde::Serialize`, `serde::Deserialize`,
//! `serde::de::DeserializeOwned`, …) match the real crate closely enough
//! that the workspace code compiles unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// The self-describing data model every serializable type maps through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (insertion order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries when the value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements when the value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(elements) => Some(elements),
            _ => None,
        }
    }

    /// Returns the string when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64`; `Null` coerces to NaN so that non-finite
    /// floats round-trip through JSON.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (floats must be integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() => Some(*v as i64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (floats must be integral and non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::UInt(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 && *v >= 0.0 && v.is_finite() => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the boolean when the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Alias matching serde's `de::Error::custom`.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self::msg(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde bounds (`for<'de> Deserialize<'de>`); this implementation always
/// copies out of the value tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Deserialization-side re-exports matching `serde::de::*` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
}

/// Serialization-side re-exports matching `serde::ser::*` paths.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Looks up and deserializes a struct field from derived map output.
///
/// # Errors
///
/// Fails when the field is missing or its value does not deserialize.
pub fn from_field<T: DeserializeOwned>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, value)) => {
            T::from_value(value).map_err(|err| Error::msg(format!("field `{key}`: {err}")))
        }
        None => Err(Error::msg(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive and std-type implementations.
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::msg(
                    concat!("expected an integer for ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(
                    concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::msg(
                    concat!("expected an unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(
                    concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON has no non-finite literals; mirror serde_json's `null`.
            Value::Null
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected a number for f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg("expected a boolean"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::msg("expected a one-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a one-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::msg("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence"))?;
        if seq.len() != N {
            return Err(Error::msg(format!("expected an array of length {N}, got {}", seq.len())));
        }
        let mut out = [T::default(); N];
        for (slot, element) in out.iter_mut().zip(seq) {
            *slot = T::from_value(element)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::msg("expected a tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!(
                        "expected a tuple of length {expected}, got {}", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Maps serialize as sequences of `[key, value]` pairs so that non-string
/// keys (enums, integers) survive the JSON round-trip.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: DeserializeOwned + Eq + std::hash::Hash,
    V: DeserializeOwned,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence of pairs"))?;
        let mut map = HashMap::with_capacity_and_hasher(seq.len(), S::default());
        for pair in seq {
            let (k, v) = <(K, V)>::from_value(pair)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<'de, K: DeserializeOwned + Ord, V: DeserializeOwned> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence of pairs"))?;
        let mut map = BTreeMap::new();
        for pair in seq {
            let (k, v) = <(K, V)>::from_value(pair)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: DeserializeOwned + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence"))?;
        let mut set = HashSet::with_capacity_and_hasher(seq.len(), S::default());
        for element in seq {
            set.insert(T::from_value(element)?);
        }
        Ok(set)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq().ok_or_else(|| Error::msg("expected a sequence"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![Value::UInt(self.as_secs()), Value::UInt(u64::from(self.subsec_nanos()))])
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::from_value(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u8, 2.0f64), (3, 4.0)];
        assert_eq!(Vec::<(u8, f64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let mut map = HashMap::new();
        map.insert("k".to_string(), 9u32);
        assert_eq!(HashMap::<String, u32>::from_value(&map.to_value()).unwrap(), map);
    }
}
