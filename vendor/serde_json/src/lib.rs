//! Offline stand-in for `serde_json` backed by the vendored `serde` value
//! tree: a hand-written JSON emitter and recursive-descent parser.
//!
//! Numbers are printed with Rust's shortest round-trippable formatting, so
//! `f64` payloads (model weights, metrics) survive a save/load cycle
//! bit-exactly unless they are non-finite (emitted as `null`, read back as
//! NaN — mirroring real serde_json's lossy default).

use serde::{DeserializeOwned, Serialize, Value};

/// Error raised by JSON encoding or decoding.
pub type Error = serde::Error;

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Currently infallible for the vendored data model; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Currently infallible; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or when the document does not match `T`.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value)
}

/// Serializes any serializable type into the generic [`Value`] tree.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors the real serde_json signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a type from a generic [`Value`] tree.
///
/// # Errors
///
/// Fails when the tree does not match `T`.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Emitter.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(elements) => {
            if elements.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, element) in elements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, element, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, element)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, element, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{v}");
    out.push_str(&text);
    // Keep floats recognisable as floats when re-parsed.
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", char::from(byte), self.pos)))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.consume_literal("null", Value::Null),
            Some(b't') => self.consume_literal("true", Value::Bool(true)),
            Some(b'f') => self.consume_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => {
                Err(Error::msg(format!("unexpected `{}` at byte {}", char::from(c), self.pos)))
            }
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(elements));
        }
        loop {
            self.skip_whitespace();
            elements.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(elements));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let original: Vec<(String, f64)> =
            vec![("a\n\"x\"".to_string(), 1.25), ("b".to_string(), -0.0625)];
        let compact = to_string(&original).unwrap();
        let pretty = to_string_pretty(&original).unwrap();
        let back_compact: Vec<(String, f64)> = from_str(&compact).unwrap();
        let back_pretty: Vec<(String, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back_compact, original);
        assert_eq!(back_pretty, original);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -2.5e-300] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }

    #[test]
    fn integers_parse_as_integers() {
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
    }
}
